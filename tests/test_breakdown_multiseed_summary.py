"""Tests for power breakdown, multi-seed statistics, and the app report."""

import pytest

from repro.core.power_breakdown import power_breakdown
from repro.core.study import run_app
from repro.core.summary import app_report
from repro.platform.chip import exynos5422
from repro.platform.coretypes import CoreType
from repro.experiments.multiseed import (
    across_seeds,
    run_tlp_multiseed,
    seed_stats,
)


class TestPowerBreakdown:
    @pytest.fixture(scope="class")
    def case(self):
        chip = exynos5422(screen_on=True)
        run = run_app("encoder", chip=chip, seed=1)
        return run, chip

    def test_components_sum_to_total(self, case):
        run, chip = case
        b = power_breakdown(run.trace, chip.power_model.params)
        components = (
            b.base_mw + b.screen_mw + b.little_cpu_mw + b.big_cpu_mw + b.uncore_mw
        )
        assert components == pytest.approx(b.total_mw, rel=0.01)

    def test_encoder_is_big_cpu_dominated(self, case):
        run, chip = case
        b = power_breakdown(run.trace, chip.power_model.params)
        assert b.big_share_of_cpu > 0.8
        assert b.big_cpu_mw > b.little_cpu_mw

    def test_light_app_is_little_dominated(self):
        chip = exynos5422(screen_on=True)
        run = run_app("video-player", chip=chip, seed=1, max_seconds=4.0)
        b = power_breakdown(run.trace, chip.power_model.params)
        # Big cluster contributes only idle leakage.
        assert b.little_cpu_mw + 1.0 > b.big_cpu_mw or b.big_share_of_cpu < 0.6

    def test_cpu_power_traces_positive_when_busy(self, case):
        run, _ = case
        big = run.trace.cpu_power_mw(CoreType.BIG)
        assert big.max() > 100.0

    def test_empty_trace(self):
        from repro.sim.trace import Trace
        from repro.platform.power import PowerParams

        trace = Trace([CoreType.LITTLE], [True], max_ticks=1)
        trace.finalize()
        b = power_breakdown(trace, PowerParams())
        assert b.total_mw == 0.0

    def test_render(self, case):
        run, chip = case
        out = power_breakdown(run.trace, chip.power_model.params).render()
        assert "big CPU" in out


class TestSeedStats:
    def test_single_value(self):
        s = seed_stats([5.0])
        assert s.mean == 5.0 and s.std == 0.0 and s.n == 1

    def test_mean_and_std(self):
        s = seed_stats([1.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx(2.0 ** 0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            seed_stats([])

    def test_str_format(self):
        assert str(seed_stats([1.0, 3.0])).startswith("2.00±")

    def test_across_seeds_calls_measure(self):
        calls = []

        def measure(seed):
            calls.append(seed)
            return float(seed)

        s = across_seeds(measure, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert s.mean == 2.0


class TestMultiSeedTLP:
    def test_two_apps_two_seeds(self):
        result = run_tlp_multiseed(apps=["video-player", "encoder"], seeds=[0, 1])
        assert result.tlp["encoder"].n == 2
        # Structural facts hold across seeds, with finite spread.
        assert result.big["encoder"].mean > 30.0
        assert result.big["video-player"].mean < 3.0
        assert result.tlp["video-player"].std < 0.5
        assert "±" in result.render()


class TestAppReport:
    @pytest.fixture(scope="class")
    def report(self):
        return app_report("photo-editor", seed=1)

    def test_all_sections_present(self, report):
        out = report.render(timeline_width=40)
        for heading in (
            "TLP statistics", "Active-core distribution",
            "Efficiency decomposition", "power breakdown",
            "Idle-behaviour", "latency distribution",
            "Per-task execution profile", "span:",
        ):
            assert heading in out, heading

    def test_fps_app_omits_latency_distribution(self):
        report = app_report("video-player", seed=1)
        assert report.latency_dist is None
        assert "fps average" in report.render(timeline_width=30)

    def test_consistency_between_sections(self, report):
        assert report.energy.total_energy_mj == pytest.approx(
            report.run.energy_mj()
        )
        assert report.tlp.n_windows > 100
