"""Concurrency regression tests for the shared result-cache store.

The distributed backend points many processes (pool workers, remote
``biglittle worker`` sessions via catalog merge) at one cache root, so
``ResultCache.store`` must tolerate concurrent writers racing on the
same entry directory, and the catalog log must never interleave bytes
mid-line.  These tests hammer one cache root from several processes and
then assert every entry loads and every catalog line parses.
"""

import json
import multiprocessing as mp
import os

from repro.lake.catalog import Catalog
from repro.runner.cache import ResultCache
from repro.runner.spec import RunResult, RunSpec

N_PROCS = 4
N_SPECS = 6
N_ITERS = 15


def _spec(i: int) -> RunSpec:
    return RunSpec(
        "video-player", chip="exynos5422", core_config="L4+B4",
        seed=100 + i, max_seconds=1.0,
    )


def _result(spec: RunSpec) -> RunResult:
    return RunResult(
        spec_key=spec.key(), workload=spec.workload, metric="fps",
        duration_s=0.01, avg_power_mw=100.0 + spec.seed, energy_mj=1.0,
        avg_fps=60.0,
    )


def _hammer(root: str, barrier, out_q) -> None:
    """Store the same spec set over and over against a shared root."""
    cache = ResultCache(root=root)
    barrier.wait()  # line every process up before the first store
    for _ in range(N_ITERS):
        for i in range(N_SPECS):
            spec = _spec(i)
            cache.store(spec, _result(spec))
    out_q.put((cache.stats.entries_written, cache.stats.store_races))


def test_concurrent_store_same_entries(tmp_path):
    root = str(tmp_path / "cache")
    ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
    barrier = ctx.Barrier(N_PROCS)
    out_q = ctx.Queue()
    procs = [
        ctx.Process(target=_hammer, args=(root, barrier, out_q))
        for _ in range(N_PROCS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0, "a hammer process crashed"

    tallies = [out_q.get(timeout=10) for _ in procs]
    written = sum(w for w, _ in tallies)
    races = sum(r for _, r in tallies)
    # Every store either published an entry or lost a benign race.
    assert written + races == N_PROCS * N_ITERS * N_SPECS

    # Every entry survived the stampede, byte-complete.
    cache = ResultCache(root=root)
    for i in range(N_SPECS):
        spec = _spec(i)
        result = cache.load(spec)
        assert result is not None, f"spec {i} lost to a write race"
        assert result.avg_power_mw == 100.0 + spec.seed
    assert cache.stats.hits == N_SPECS

    # No orphaned temp dirs left behind by losing writers.
    leftovers = [
        name
        for _, dirnames, _ in os.walk(root)
        for name in dirnames
        if name.startswith(".tmp-")
    ]
    assert leftovers == []


def test_concurrent_catalog_lines_never_torn(tmp_path):
    """Every catalog line written under contention parses as JSON."""
    root = str(tmp_path / "cache")
    ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
    barrier = ctx.Barrier(N_PROCS)
    out_q = ctx.Queue()
    procs = [
        ctx.Process(target=_hammer, args=(root, barrier, out_q))
        for _ in range(N_PROCS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0

    catalog = Catalog(root=root)
    with open(catalog.path) as fh:
        lines = [line for line in fh.read().splitlines() if line]
    assert lines, "catalog never got written"
    for line in lines:
        record = json.loads(line)  # raises on a torn write
        assert "schema" in record

    # The folded view resolves to exactly the hammered spec set.
    entries = catalog.load()
    assert {e.spec_key for e in entries} == {_spec(i).key() for i in range(N_SPECS)}
