"""Calibration freeze: the app models must keep matching Table III's shape.

These tests pin the *qualitative* orderings of the paper's Table III
(which app families use big cores, which are idle-heavy, who has the
highest TLP) rather than exact percentages — game-phase randomness makes
per-seed magnitudes fluctuate by several points, but the orderings must
never flip.  Exact paper-vs-measured numbers live in EXPERIMENTS.md and
the table3 benchmark.
"""

import pytest

from repro.core.study import CharacterizationStudy
from repro.workloads.mobile import MOBILE_APP_NAMES
from repro.workloads.targets import PAPER_TABLE3, deviation


@pytest.fixture(scope="module")
def stats():
    study = CharacterizationStudy(seed=7)
    return {app: study.characterize(app).tlp for app in MOBILE_APP_NAMES}


class TestCalibrationShape:
    def test_targets_cover_all_apps(self):
        assert set(PAPER_TABLE3) == set(MOBILE_APP_NAMES)

    def test_big_usage_classes(self, stats):
        """Near-zero / moderate / heavy big-core app classes hold."""
        for app in ("angry-bird", "video-player", "youtube"):
            assert stats[app].big_active_pct < 3.0, app
        for app in ("pdf-reader", "browser", "photo-editor"):
            assert stats[app].big_active_pct < 20.0, app
        for app in ("bbench", "encoder"):
            assert stats[app].big_active_pct > 30.0, app

    def test_encoder_is_big_dominated(self, stats):
        assert stats["encoder"].big_active_pct > stats["encoder"].little_only_pct

    def test_bbench_highest_tlp(self, stats):
        for app in MOBILE_APP_NAMES:
            if app != "bbench":
                assert stats["bbench"].tlp > stats[app].tlp, app

    def test_photo_editor_lowest_latency_app_tlp(self, stats):
        latency_apps = ["pdf-reader", "video-editor", "bbench", "virus-scanner",
                        "browser", "encoder"]
        for app in latency_apps:
            if app != "encoder":  # encoder is also single-thread-dominated
                assert stats["photo-editor"].tlp <= stats[app].tlp + 0.3, app

    def test_idle_ordering(self, stats):
        assert stats["browser"].idle_pct > 35.0
        for app in ("bbench", "encoder"):
            assert stats[app].idle_pct < 5.0, app
        assert stats["browser"].idle_pct > stats["video-player"].idle_pct

    def test_all_tlp_within_one_core_of_paper(self, stats):
        for app in MOBILE_APP_NAMES:
            d = deviation(app, stats[app])
            assert d.tlp_delta < 1.0, (app, d)

    def test_big_share_within_15_points(self, stats):
        for app in MOBILE_APP_NAMES:
            d = deviation(app, stats[app])
            assert d.big_delta < 15.0, (app, d)

    def test_idle_within_15_points(self, stats):
        for app in MOBILE_APP_NAMES:
            d = deviation(app, stats[app])
            assert d.idle_delta < 15.0, (app, d)
