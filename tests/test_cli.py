"""Tests for the ``biglittle`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_seed(self):
        args = build_parser().parse_args(["run", "table3", "--seed", "5"])
        assert args.experiment == "table3"
        assert args.seed == 5

    def test_characterize_validates_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "not-an-app"])


class TestCommands:
    def test_list_prints_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig13" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_characterize_runs(self, capsys):
        assert main(["characterize", "video-player"]) == 0
        out = capsys.readouterr().out
        assert "TLP statistics" in out
        assert "efficiency decomposition" in out

    def test_profile_runs(self, capsys):
        assert main(["profile", "video-player", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Per-task execution profile" in out
        assert "video-player/" in out

    def test_timeline_runs(self, capsys):
        assert main(["timeline", "video-player", "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "busy" in out and "span:" in out

    def test_run_with_json_export(self, capsys, tmp_path):
        path = str(tmp_path / "out.json")
        assert main(["run", "fig6", "--json", path]) == 0
        import json

        with open(path) as f:
            payload = json.load(f)
        assert "power_mw" in payload
