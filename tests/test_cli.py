"""Tests for the ``biglittle`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_seed(self):
        args = build_parser().parse_args(["run", "table3", "--seed", "5"])
        assert args.experiment == "table3"
        assert args.seed == 5

    def test_characterize_validates_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "not-an-app"])

    def test_batch_parses_runner_options(self):
        args = build_parser().parse_args([
            "batch", "--apps", "bbench,browser", "--configs", "L4+B4,L2+B1",
            "--seeds", "0,1", "--workers", "4", "--timeout", "30",
            "--retries", "2", "--no-cache",
        ])
        assert args.command == "batch"
        assert args.apps == "bbench,browser"
        assert args.workers == 4
        assert args.timeout == 30.0
        assert args.retries == 2
        assert args.no_cache

    def test_sweep_validates_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "not-a-sweep"])
        args = build_parser().parse_args(["sweep", "params", "--workers", "2"])
        assert args.target == "params"
        assert args.workers == 2

    def test_observe_parses_exports_and_verbosity(self):
        args = build_parser().parse_args([
            "-v", "observe", "bbench", "--seed", "3", "--max-seconds", "2",
            "--perfetto", "t.json", "--metrics", "m.json",
            "--events", "e.jsonl",
        ])
        assert args.command == "observe"
        assert args.app == "bbench"
        assert args.seed == 3
        assert args.max_seconds == 2.0
        assert args.perfetto == "t.json"
        assert args.metrics == "m.json"
        assert args.events == "e.jsonl"
        assert args.verbose == 1

    def test_observe_validates_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["observe", "not-an-app"])


class TestCommands:
    def test_list_prints_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig13" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_characterize_runs(self, capsys):
        assert main(["characterize", "video-player"]) == 0
        out = capsys.readouterr().out
        assert "TLP statistics" in out
        assert "efficiency decomposition" in out

    def test_profile_runs(self, capsys):
        assert main(["profile", "video-player", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Per-task execution profile" in out
        assert "video-player/" in out

    def test_timeline_runs(self, capsys):
        assert main(["timeline", "video-player", "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "busy" in out and "span:" in out

    def test_run_with_json_export(self, capsys, tmp_path):
        path = str(tmp_path / "out.json")
        assert main(["run", "fig6", "--json", path]) == 0
        import json

        with open(path) as f:
            payload = json.load(f)
        assert "power_mw" in payload

    def test_batch_runs_grid(self, capsys, tmp_path):
        json_path = str(tmp_path / "report.json")
        rc = main([
            "batch", "--apps", "video-player", "--configs", "L4+B4,L2",
            "--seeds", "0", "--chip", "exynos5422", "--max-seconds", "0.5",
            "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
            "--json", json_path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Batch: 2/2 ok" in out
        assert "video-player/L4+B4/s0" in out
        import json

        with open(json_path) as f:
            payload = json.load(f)
        assert payload["cache_misses"] == 2
        assert len(payload["results"]) == 2

        # A warm rerun of the same grid is served entirely from cache.
        rc = main([
            "batch", "--apps", "video-player", "--configs", "L4+B4,L2",
            "--seeds", "0", "--chip", "exynos5422", "--max-seconds", "0.5",
            "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 0
        assert "2 cached" in capsys.readouterr().out

    def test_observe_runs_and_exports(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_trace_events

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        events_path = tmp_path / "events.jsonl"
        rc = main([
            "observe", "bbench", "--max-seconds", "2",
            "--perfetto", str(trace_path),
            "--metrics", str(metrics_path),
            "--events", str(events_path),
        ])
        assert rc == 0
        # Stdout carries only the summary tables; exports land on disk.
        out = capsys.readouterr().out
        assert "Migrations" in out
        assert "OPP residency" in out

        payload = json.loads(trace_path.read_text())
        assert validate_trace_events(payload) == []
        assert payload["otherData"]["app"] == "bbench"

        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["migrations.total"] >= 0
        assert metrics["gauges"]["total_ticks"] == 2000

        lines = events_path.read_text().splitlines()
        assert lines
        assert all("event" in json.loads(line) for line in lines)

    def test_observe_summary_only(self, capsys):
        rc = main(["observe", "video-player", "--max-seconds", "1"])
        assert rc == 0
        assert "Migrations" in capsys.readouterr().out


class TestExploreCommand:
    def test_explore_parses_options(self):
        args = build_parser().parse_args([
            "explore", "--workloads", "browser", "--axis", "big_cores=0,2",
            "--sampler", "grid", "--horizon", "2.0", "--area-mm2", "18",
            "--max-points", "16", "--checkpoint", "c.jsonl", "--json", "f.json",
        ])
        assert args.command == "explore"
        assert args.axis == ["big_cores=0,2"]
        assert args.sampler == "grid"
        assert args.horizon == 2.0
        assert args.area_mm2 == 18.0

    def test_explore_rejects_unknown_sampler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--sampler", "annealing"])

    def test_explore_rejects_unknown_axis(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "explore", "--axis", "ring_oscillators=1,2",
                "--cache-dir", str(tmp_path),
            ])

    def test_explore_tiny_grid_end_to_end(self, capsys, tmp_path):
        import json

        artifact = tmp_path / "frontier.json"
        rc = main([
            "explore", "--workloads", "browser",
            "--axis", "little_cores=2", "--axis", "big_cores=0,1",
            "--sampler", "grid", "--horizon", "0.4", "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"), "--json", str(artifact),
        ])
        assert rc == 0
        assert "Pareto frontier" in capsys.readouterr().out
        payload = json.loads(artifact.read_text())
        assert payload["frontier"]
        assert payload["n_evaluations"] == 2


class TestCacheCommand:
    def test_cache_parses_flags(self):
        args = build_parser().parse_args(["cache", "--stats", "--prune"])
        assert args.command == "cache"
        assert args.stats and args.prune

    def test_cache_reports_and_prunes_stale_versions(self, capsys, tmp_path):
        stale = tmp_path / "0.0.0-old" / "deadbeef"
        stale.mkdir(parents=True)
        (stale / "result.json").write_text("{}")

        rc = main(["cache", "--stats", "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.0.0-old" in out and "stale" in out
        assert "this process:" in out

        rc = main(["cache", "--prune", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "pruned 1 entries" in capsys.readouterr().out
        assert not (tmp_path / "0.0.0-old").exists()
