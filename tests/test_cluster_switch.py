"""Tests for the first-generation cluster-switching scheduler."""

import pytest

from repro.platform.chip import CoreConfig
from repro.platform.coretypes import CoreType
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.sched.cluster_switch import ClusterSwitchingScheduler
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, TaskState, Work


def make_sim(max_seconds=3.0, core_config=None, seed=0):
    return Simulator(SimConfig(
        max_seconds=max_seconds,
        core_config=core_config,
        scheduler_factory=ClusterSwitchingScheduler,
        seed=seed,
    ))


def spin(ctx):
    while True:
        yield Work(1.0)


def light(ctx):
    while True:
        yield Work(0.001)
        yield Sleep(0.03)


class TestClusterExclusivity:
    def test_starts_on_little(self):
        sim = make_sim()
        assert sim.hmp.active_type is CoreType.LITTLE

    def test_never_both_clusters_in_same_tick(self):
        sim = make_sim(max_seconds=3.0)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        sim.spawn(Task("light", light, COMPUTE_BOUND))
        trace = sim.run()
        little = trace.busy[trace.cores_of_type(CoreType.LITTLE)].sum(axis=0)
        big = trace.busy[trace.cores_of_type(CoreType.BIG)].sum(axis=0)
        both = ((little > 0) & (big > 0)).mean()
        # Switch ticks can straddle; concurrency must be incidental only.
        assert both < 0.02

    def test_heavy_load_switches_to_big(self):
        sim = make_sim(max_seconds=3.0)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        trace = sim.run()
        big = trace.busy[trace.cores_of_type(CoreType.BIG)]
        assert big.sum() > 0
        assert sim.hmp.switches >= 1

    def test_light_load_stays_little(self):
        sim = make_sim(max_seconds=3.0)
        sim.spawn(Task("light", light, COMPUTE_BOUND))
        trace = sim.run()
        big = trace.busy[trace.cores_of_type(CoreType.BIG)]
        assert big.sum() == 0
        assert sim.hmp.switches == 0

    def test_switches_back_when_load_drops(self):
        sim = make_sim(max_seconds=6.0)

        def burst_then_idle(ctx):
            yield Work(2.0)
            while True:
                yield Work(0.0005)
                yield Sleep(0.05)

        sim.spawn(Task("burst", burst_then_idle, COMPUTE_BOUND))
        sim.run()
        assert sim.hmp.switches >= 2
        assert sim.hmp.active_type is CoreType.LITTLE

    def test_light_tasks_dragged_to_big_with_heavy(self):
        """The old design's cost: helpers ride along on the big cluster."""
        sim = make_sim(max_seconds=3.0)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        helper = Task("light", light, COMPUTE_BOUND)
        sim.spawn(helper)
        trace = sim.run()
        # In steady state (big active) the helper must run on big cores.
        big_rows = set(trace.cores_of_type(CoreType.BIG))
        assert helper.core_id in big_rows or helper.last_core_id in big_rows

    def test_single_cluster_config_degenerates_to_hmp(self):
        sim = make_sim(core_config=CoreConfig(4, 0), max_seconds=1.0)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        trace = sim.run()
        assert trace.busy[trace.cores_of_type(CoreType.BIG)].sum() == 0
