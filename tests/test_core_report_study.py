"""Tests for report rendering and the high-level study API."""

import numpy as np
import pytest

from repro.core.report import render_bar_chart, render_matrix, render_table
from repro.core.study import CharacterizationStudy, run_app
from repro.workloads.base import Metric


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["a", "bb"], [[1.0, 2.5], [10.0, 20.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.00" in out and "20.25" in out

    def test_float_format(self):
        out = render_table(["x"], [[3.14159]], float_fmt="{:.0f}")
        assert "3" in out and "3.14" not in out

    def test_mixed_types(self):
        out = render_table(["name", "v"], [["app", 1.5]])
        assert "app" in out


class TestRenderMatrix:
    def test_shape_rendered(self):
        matrix = np.array([[50.0, 25.0], [12.5, 12.5]])
        out = render_matrix(matrix)
        assert "C0" in out and "C1" in out
        assert "50.00" in out


class TestRenderBarChart:
    def test_bars_scale(self):
        out = render_bar_chart(["a", "b"], [10.0, 20.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_zero_values_no_bars(self):
        out = render_bar_chart(["a"], [0.0])
        assert "#" not in out


class TestRunApp:
    def test_fps_app_default_duration(self):
        run = run_app("video-player", seed=0)
        assert run.metric is Metric.FPS
        assert run.trace.duration_s == pytest.approx(12.0, abs=0.1)

    def test_latency_app_stops_at_script_end(self):
        run = run_app("photo-editor", seed=0)
        assert run.metric is Metric.LATENCY
        assert run.trace.duration_s < 60.0

    def test_custom_duration(self):
        run = run_app("youtube", seed=0, max_seconds=3.0)
        assert run.trace.duration_s == pytest.approx(3.0, abs=0.1)

    def test_config_label(self):
        from repro.platform.chip import CoreConfig
        run = run_app("youtube", core_config=CoreConfig(2, 1), max_seconds=2.0)
        assert run.config_label == "L2+B1"

    def test_energy_consistent_with_power(self):
        run = run_app("youtube", seed=0, max_seconds=3.0)
        assert run.energy_mj() == pytest.approx(
            run.avg_power_mw() * run.trace.duration_s, rel=1e-5
        )


class TestCharacterizationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return CharacterizationStudy(seed=7)

    def test_characterization_complete(self, study):
        c = study.characterize("video-player")
        assert c.tlp.n_windows > 500
        assert c.matrix.shape == (5, 5)
        assert c.matrix.sum() == pytest.approx(100.0)
        assert sum(c.efficiency.as_row()) == pytest.approx(100.0)
        assert sum(c.little_residency.values()) == pytest.approx(100.0)

    def test_cache_returns_same_object(self, study):
        assert study.characterize("video-player") is study.characterize("video-player")

    def test_big_residency_empty_for_little_only_app(self, study):
        c = study.characterize("video-player")
        assert sum(c.big_residency.values()) in (0.0, pytest.approx(100.0))
