"""Tests for frequency residency and the Table V efficiency states."""

import pytest

from repro.core.efficiency import CATEGORY_NAMES, efficiency_breakdown
from repro.core.residency import frequency_residency, residency_buckets
from repro.platform.coretypes import CoreType
from repro.sim.trace import Trace

TYPES = [CoreType.LITTLE] * 2 + [CoreType.BIG] * 2
ENABLED = [True] * 4

LITTLE_MIN = 500_000
BIG_MAX = 1_900_000


def make_trace(rows):
    """rows: list of (busy[4], little_khz, big_khz) per tick."""
    trace = Trace(TYPES, ENABLED, max_ticks=len(rows))
    for busy, lf, bf in rows:
        trace.record(list(busy), lf, bf, 400.0)
    trace.finalize()
    return trace


class TestResidency:
    def test_counts_only_active_ticks(self):
        rows = (
            [([0.5, 0, 0, 0], 500_000, 800_000)] * 10
            + [([0.0, 0, 0, 0], 1_300_000, 800_000)] * 10  # idle, ignored
            + [([0.9, 0, 0, 0], 1_300_000, 800_000)] * 10
        )
        res = frequency_residency(make_trace(rows), CoreType.LITTLE)
        assert res[500_000] == pytest.approx(50.0)
        assert res[1_300_000] == pytest.approx(50.0)

    def test_never_active_cluster_empty(self):
        rows = [([0.5, 0, 0, 0], 500_000, 800_000)] * 5
        assert frequency_residency(make_trace(rows), CoreType.BIG) == {}

    def test_percentages_sum_to_100(self):
        rows = [([0.2, 0, 0.1, 0], f, 1_000_000)
                for f in (500_000, 600_000, 700_000, 500_000)]
        res = frequency_residency(make_trace(rows), CoreType.LITTLE)
        assert sum(res.values()) == pytest.approx(100.0)

    def test_buckets_dense_expansion(self):
        res = {500_000: 60.0, 700_000: 40.0}
        assert residency_buckets(res, (500_000, 600_000, 700_000)) == [60.0, 0.0, 40.0]


class TestEfficiency:
    def window(self, busy, little_khz=LITTLE_MIN, big_khz=800_000, n=10):
        return [(busy, little_khz, big_khz)] * n

    def breakdown(self, rows):
        return efficiency_breakdown(make_trace(rows), LITTLE_MIN, BIG_MAX)

    def test_idle_at_min_freq_is_min_state(self):
        b = self.breakdown(self.window([0, 0, 0, 0], little_khz=LITTLE_MIN))
        assert b.min_pct == 100.0

    def test_idle_at_raised_freq_is_under50(self):
        b = self.breakdown(self.window([0, 0, 0, 0], little_khz=1_300_000))
        assert b.under_50_pct == 100.0

    def test_low_util_at_min_freq_is_min_state(self):
        b = self.breakdown(self.window([0.3, 0, 0, 0], little_khz=LITTLE_MIN))
        assert b.min_pct == 100.0

    def test_low_util_at_higher_freq_is_under50(self):
        b = self.breakdown(self.window([0.3, 0, 0, 0], little_khz=700_000))
        assert b.under_50_pct == 100.0

    def test_mid_bands(self):
        assert self.breakdown(self.window([0.6, 0, 0, 0])).pct_50_70 == 100.0
        assert self.breakdown(self.window([0.8, 0, 0, 0])).pct_70_95 == 100.0
        assert self.breakdown(self.window([0.97, 0, 0, 0])).over_95_pct == 100.0

    def test_full_requires_big_at_max(self):
        saturated_big = self.window([0, 0, 1.0, 0], big_khz=BIG_MAX)
        assert self.breakdown(saturated_big).full_pct == 100.0

    def test_saturated_big_below_max_is_over95(self):
        rows = self.window([0, 0, 1.0, 0], big_khz=1_300_000)
        assert self.breakdown(rows).over_95_pct == 100.0

    def test_saturated_little_is_over95_not_full(self):
        rows = self.window([1.0, 0, 0, 0])
        assert self.breakdown(rows).over_95_pct == 100.0

    def test_partition_sums_to_100(self):
        rows = (
            self.window([0, 0, 0, 0])
            + self.window([0.4, 0, 0, 0], little_khz=900_000)
            + self.window([0.6, 0.2, 0, 0])
            + self.window([0, 0, 0.85, 0])
            + self.window([0, 0, 1.0, 0], big_khz=BIG_MAX)
        )
        b = self.breakdown(rows)
        assert sum(b.as_row()) == pytest.approx(100.0)

    def test_busiest_core_decides(self):
        # Little at 30% and big at 97%: the interval is judged by the big.
        rows = self.window([0.3, 0, 0.97, 0], big_khz=1_000_000)
        assert self.breakdown(rows).over_95_pct == 100.0

    def test_category_names_order(self):
        assert CATEGORY_NAMES == ["min", "<50%", "50-70%", "70-95%", ">95%", "full"]

    def test_empty_trace_is_all_min(self):
        trace = Trace(TYPES, ENABLED, max_ticks=3)
        trace.finalize()
        b = efficiency_breakdown(trace, LITTLE_MIN, BIG_MAX)
        assert b.min_pct == 100.0
