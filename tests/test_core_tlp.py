"""Tests for TLP statistics and the Table IV activity matrix."""

import numpy as np
import pytest

from repro.core.tlp import tlp_stats
from repro.core.tlp_matrix import tlp_matrix
from repro.platform.coretypes import CoreType
from repro.sim.trace import Trace

TYPES = [CoreType.LITTLE] * 4 + [CoreType.BIG] * 4
ENABLED = [True] * 8


def trace_from_pattern(pattern: list[list[float]], ticks_per_window=10) -> Trace:
    """Build a trace from per-window per-core activity levels."""
    n_windows = len(pattern)
    trace = Trace(TYPES, ENABLED, max_ticks=n_windows * ticks_per_window)
    for window in pattern:
        for _ in range(ticks_per_window):
            trace.record(list(window), 500_000, 800_000, 400.0)
    trace.finalize()
    return trace


IDLE = [0.0] * 8


def active(*cores: int) -> list[float]:
    row = [0.0] * 8
    for c in cores:
        row[c] = 0.5
    return row


class TestTLPStats:
    def test_all_idle(self):
        stats = tlp_stats(trace_from_pattern([IDLE, IDLE]))
        assert stats.idle_pct == 100.0
        assert stats.tlp == 0.0

    def test_idle_percentage(self):
        stats = tlp_stats(trace_from_pattern([IDLE, active(0), active(0), IDLE]))
        assert stats.idle_pct == 50.0

    def test_tlp_over_active_windows_only(self):
        # Windows: idle, 1 core, 3 cores -> TLP = (1+3)/2 = 2.
        stats = tlp_stats(trace_from_pattern([IDLE, active(0), active(0, 1, 2)]))
        assert stats.tlp == pytest.approx(2.0)

    def test_core_type_shares_weighted_by_count(self):
        # One window: 2 little + 1 big active -> little 66.7%, big 33.3%.
        stats = tlp_stats(trace_from_pattern([active(0, 1, 4)]))
        assert stats.little_only_pct == pytest.approx(200.0 / 3)
        assert stats.big_active_pct == pytest.approx(100.0 / 3)

    def test_shares_sum_to_100(self):
        stats = tlp_stats(trace_from_pattern(
            [active(0), active(4, 5), active(1, 2, 6), IDLE]
        ))
        assert stats.little_only_pct + stats.big_active_pct == pytest.approx(100.0)

    def test_empty_trace(self):
        trace = Trace(TYPES, ENABLED, max_ticks=5)
        trace.finalize()
        stats = tlp_stats(trace)
        assert stats.idle_pct == 100.0
        assert stats.n_windows == 0

    def test_as_row(self):
        stats = tlp_stats(trace_from_pattern([active(0)]))
        assert len(stats.as_row()) == 4


class TestTLPMatrix:
    def test_shape(self):
        matrix = tlp_matrix(trace_from_pattern([IDLE]))
        assert matrix.shape == (5, 5)

    def test_idle_in_corner(self):
        matrix = tlp_matrix(trace_from_pattern([IDLE, active(0)]))
        assert matrix[0, 0] == pytest.approx(50.0)
        assert matrix[0, 1] == pytest.approx(50.0)

    def test_counts_by_type(self):
        # 2 little + 1 big active -> cell [1][2].
        matrix = tlp_matrix(trace_from_pattern([active(0, 1, 4)]))
        assert matrix[1, 2] == pytest.approx(100.0)

    def test_sums_to_100(self):
        pattern = [IDLE, active(0), active(0, 4), active(1, 2, 5, 6), active(3)]
        matrix = tlp_matrix(trace_from_pattern(pattern))
        assert matrix.sum() == pytest.approx(100.0)

    def test_consistency_with_tlp_stats(self):
        """Table III must be derivable from Table IV (the paper property
        we used to identify the metric definitions)."""
        pattern = [IDLE, active(0), active(0, 1, 4), active(2, 4, 5), active(1)]
        trace = trace_from_pattern(pattern)
        stats = tlp_stats(trace)
        matrix = tlp_matrix(trace)

        idle = matrix[0, 0]
        little_samples = sum(
            l * matrix[b, l] for b in range(5) for l in range(5)
        )
        big_samples = sum(
            b * matrix[b, l] for b in range(5) for l in range(5)
        )
        active_windows = 100.0 - idle
        assert stats.idle_pct == pytest.approx(idle)
        assert stats.tlp == pytest.approx(
            (little_samples + big_samples) / active_windows
        )
        assert stats.little_only_pct == pytest.approx(
            100.0 * little_samples / (little_samples + big_samples)
        )
