"""Tests for ``repro.dist``: protocol, coordinator, worker, failure paths.

Fast paths use in-process thread workers (real sockets over loopback,
no subprocess start-up); the worker-death test uses genuine
``biglittle worker`` CLI subprocesses because dying abruptly is the
point.  All specs travel with ``trace_policy`` in the wire-admitted set
(``rle``/``none``).
"""

import os
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
from repro.dist import (
    Coordinator,
    DistAdmissionError,
    DistExecutor,
    DistWorker,
    ProtocolError,
    decode_results,
    encode_results,
    job_key,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from repro.runner.batch import BatchRunner
from repro.runner.cache import ResultCache
from repro.runner.spec import (
    RunSpec,
    execute_spec,
    spec_from_wire,
    spec_to_wire,
)
from repro.sched.params import baseline_config

from tests.dist_kinds import (
    ALWAYS_CRASH_KIND,
    CRASH_ONCE_KIND,
    OK_KIND,
    SLEEPY_KIND,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _sim_spec(seed: int, trace_policy: str = "none") -> RunSpec:
    return RunSpec(
        "pdf-reader", seed=seed, max_seconds=0.5, trace_policy=trace_policy,
    )


def _kind_spec(kind: str, workload: str = "w", seed: int = 0) -> RunSpec:
    return RunSpec(
        workload, kind=kind, seed=seed, max_seconds=1.0, trace_policy="none",
    )


def _thread_worker(coord: Coordinator, cache=None, worker_id=None):
    """A real DistWorker session on a daemon thread (SIGALRM stays off)."""
    worker = DistWorker(coord.endpoint, cache=cache, worker_id=worker_id)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _cli_worker(endpoint: str, *extra: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", endpoint, *extra],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _wait_stat(coord: Coordinator, name: str, value: int, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if coord.stats().get(name, 0) >= value:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"{name} never reached {value}: {coord.stats()}"
    )


# ---------------------------------------------------------------------------
# Protocol layer
# ---------------------------------------------------------------------------


def test_parse_endpoint():
    assert parse_endpoint("tcp://10.0.0.1:5555") == ("10.0.0.1", 5555)
    assert parse_endpoint("localhost:80") == ("localhost", 80)
    with pytest.raises(ValueError):
        parse_endpoint("5555")


def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        blob = os.urandom(1024)
        sent = send_frame(a, {"type": "result", "n": 3}, blob)
        header, got = recv_frame(b)
        assert header.pop("_nbytes") == sent  # receiver-side size annotation
        assert header == {"type": "result", "n": 3}
        assert got == blob
        assert sent >= len(blob) + 8
        a.close()
        with pytest.raises(ConnectionError):
            recv_frame(b)  # EOF
    finally:
        b.close()


def test_spec_wire_roundtrip_preserves_key():
    spec = RunSpec(
        "pdf-reader", chip="exynos5422", core_config="L4+B4", seed=11,
        max_seconds=2.0, scheduler=baseline_config(), observe=True,
        reductions=("power_summary",), trace_policy="rle",
    )
    back = spec_from_wire(spec_to_wire(spec))
    assert back.key() == spec.key()
    assert back.scheduler.name == spec.scheduler.name
    assert back.reductions == spec.reductions


def test_result_codec_roundtrip_scalars_and_rle():
    slim = execute_spec(_sim_spec(1))
    rle = execute_spec(_sim_spec(2, trace_policy="rle"))
    metas, blob = encode_results([slim, rle])
    assert metas[0]["trace"] is None and metas[1]["trace"] == "rle"
    out = decode_results(metas, blob)
    assert [r.spec_key for r in out] == [slim.spec_key, rle.spec_key]
    assert out[0].scalars() == slim.scalars()
    assert np.array_equal(
        out[1].trace.materialize().busy, rle.trace.materialize().busy
    )


def test_result_codec_refuses_dense_traces():
    dense = execute_spec(_sim_spec(3, trace_policy="full"))
    with pytest.raises(ProtocolError):
        encode_results([dense])


def test_job_key_single_vs_cohort():
    a, b = _sim_spec(1), _sim_spec(2)
    assert job_key([a]) == a.key()
    cohort = job_key([a, b])
    assert cohort.startswith("cohort:") and cohort != job_key([b, a])


# ---------------------------------------------------------------------------
# Coordinator admission and handshake
# ---------------------------------------------------------------------------


def test_dense_trace_policy_refused_at_submit():
    with Coordinator().start() as coord:
        with pytest.raises(DistAdmissionError):
            coord.submit([_sim_spec(1, trace_policy="full")], None, lambda *a: None)


def test_version_mismatch_rejected():
    with Coordinator().start() as coord:
        conn = socket.create_connection((coord.host, coord.port), timeout=5)
        try:
            send_frame(conn, {
                "type": "hello", "worker_id": "stale", "version": "0.0.0",
            })
            reply, _ = recv_frame(conn)
            assert reply["type"] == "reject"
            assert repro.__version__ in reply["reason"]
        finally:
            conn.close()
        _wait_stat(coord, "dist.workers_rejected", 1)
        assert coord.worker_count == 0


# ---------------------------------------------------------------------------
# End-to-end: byte-identical to local execution
# ---------------------------------------------------------------------------


def test_distributed_results_match_serial():
    specs = [_sim_spec(s) for s in (1, 2, 3, 4)]
    reference = BatchRunner(cache=None, workers=1).run(specs)
    with Coordinator().start() as coord:
        workers = [_thread_worker(coord, worker_id=f"w{i}") for i in (1, 2)]
        coord.wait_for_workers(2)
        report = BatchRunner(cache=None, executor=DistExecutor(coord)).run(specs)
    assert report.succeeded()
    for local, remote in zip(reference.results, report.results):
        assert remote.scalars() == local.scalars()
    stats = coord.stats()
    assert stats["dist.jobs_executed"] == 4
    assert stats["dist.bytes_out"] > 0
    for worker, thread in workers:
        thread.join(timeout=5)


def test_distributed_rle_trace_is_bit_identical():
    spec = _sim_spec(5, trace_policy="rle")
    local = execute_spec(spec)
    with Coordinator().start() as coord:
        _thread_worker(coord)
        coord.wait_for_workers(1)
        report = BatchRunner(cache=None, executor=DistExecutor(coord)).run([spec])
    assert report.succeeded()
    remote = report.results[0]
    assert remote.scalars() == local.scalars()
    assert np.array_equal(
        remote.trace.materialize().busy, local.trace.materialize().busy
    )
    assert np.array_equal(
        remote.trace.materialize().power_mw, local.trace.materialize().power_mw
    )
    assert report.transport_bytes > 0


# ---------------------------------------------------------------------------
# Failure paths
# ---------------------------------------------------------------------------


def test_worker_killed_mid_job_requeues(tmp_path):
    """An abrupt worker death requeues the job to a surviving worker."""
    flag = str(tmp_path / "crash-flag")
    spec = _kind_spec(CRASH_ONCE_KIND, workload=flag)
    with Coordinator(heartbeat_s=0.2) as coord:
        coord.start()
        procs = [_cli_worker(coord.endpoint, "--no-cache", "--id", f"c{i}")
                 for i in (1, 2)]
        try:
            assert coord.wait_for_workers(2, timeout_s=30) == 2
            report = BatchRunner(
                cache=None, retries=0, executor=DistExecutor(coord)
            ).run([spec])
            assert report.succeeded()
            assert report.jobs[0].attempts == 1  # requeue is not a retry
            stats = coord.stats()
            assert stats["dist.requeues"] >= 1
            assert stats.get("dist.workers_disconnected", 0) >= 1
        finally:
            coord.shutdown()
            for p in procs:
                try:
                    p.communicate(timeout=10)
                except subprocess.TimeoutExpired:
                    p.kill()
    assert os.path.exists(flag), "crash kind never ran"


def test_hung_worker_hits_job_deadline():
    """A worker that heartbeats but never finishes fails as a timeout."""
    spec = _kind_spec(SLEEPY_KIND)
    with Coordinator(heartbeat_s=0.2, job_grace_s=0.5) as coord:
        coord.start()
        _thread_worker(coord)  # thread => SIGALRM off => the sleep runs wild
        coord.wait_for_workers(1)
        report = BatchRunner(
            cache=None, retries=0, timeout_s=0.3, executor=DistExecutor(coord)
        ).run([spec])
        assert not report.succeeded()
        assert report.jobs[0].status == "timeout"
        assert coord.stats()["dist.worker_timeouts"] == 1


def test_worker_death_exhausts_requeues_then_fails():
    """When every worker dies, requeues run out and the runner sees it."""
    spec = _kind_spec(ALWAYS_CRASH_KIND)

    class _Respawn:
        """Keep one CLI worker alive at a time, respawning as they die."""

        def __init__(self, endpoint):
            self.endpoint = endpoint
            self.stop = False
            self.procs = []

        def run(self):
            while not self.stop:
                proc = _cli_worker(
                    self.endpoint, "--no-cache", "--connect-timeout", "2"
                )
                self.procs.append(proc)
                proc.wait()

    with Coordinator(heartbeat_s=0.2, max_requeues=1) as coord:
        coord.start()
        spawner = _Respawn(coord.endpoint)
        thread = threading.Thread(target=spawner.run, daemon=True)
        thread.start()
        try:
            report = BatchRunner(
                cache=None, retries=0, executor=DistExecutor(coord)
            ).run([spec])
        finally:
            spawner.stop = True
        assert not report.succeeded()
        assert report.jobs[0].status == "failed"
        assert "worker" in (report.jobs[0].error or "").lower()
        assert coord.stats()["dist.requeues"] == 1
    for proc in spawner.procs:
        if proc.poll() is None:
            proc.kill()
        proc.communicate()


# ---------------------------------------------------------------------------
# Global dedup
# ---------------------------------------------------------------------------


def test_concurrent_duplicate_sweep_executes_once():
    """Two runners submitting the same specs share single executions."""
    specs = [_kind_spec(OK_KIND, seed=s) for s in (1, 2, 3)]
    with Coordinator().start() as coord:
        reports = [None, None]

        def _run(slot):
            reports[slot] = BatchRunner(
                cache=None, executor=DistExecutor(coord)
            ).run(specs)

        threads = [
            threading.Thread(target=_run, args=(slot,)) for slot in (0, 1)
        ]
        for t in threads:
            t.start()
        # Both runners queue all groups before any worker exists, so the
        # second submission of each spec must attach to the first's job.
        _wait_stat(coord, "dist.dedup_specs", 3)
        _thread_worker(coord)
        coord.wait_for_workers(1)
        for t in threads:
            t.join(timeout=60)
        stats = coord.stats()

    assert all(r is not None and r.succeeded() for r in reports)
    for a, b in zip(reports[0].results, reports[1].results):
        assert a.scalars() == b.scalars()
    assert stats["dist.specs"] == 3
    assert stats["dist.dedup_specs"] == 3
    assert stats["dist.specs_executed"] == 3  # zero duplicate executions


def test_worker_local_cache_answers_without_executing(tmp_path):
    """A spec cached on the worker is served from its cache, not re-run."""
    specs = [_sim_spec(s) for s in (7, 8)]
    cache = ResultCache(root=str(tmp_path / "wcache"))
    for spec in specs:
        cache.store(spec, execute_spec(spec))
    with Coordinator().start() as coord:
        _thread_worker(coord, cache=cache)
        coord.wait_for_workers(1)
        report = BatchRunner(cache=None, executor=DistExecutor(coord)).run(specs)
        stats = coord.stats()
    assert report.succeeded()
    assert stats["dist.worker_cache_hits"] == 2
    for spec, result in zip(specs, report.results):
        assert result.scalars() == cache.load(spec).scalars()
