"""Tests for the energy and interactivity analysis modules."""

import pytest

from repro.core.energy import compare_energy, energy_metrics
from repro.core.interactivity import latency_distribution
from repro.core.study import run_app
from repro.platform.chip import CoreConfig
from repro.workloads.base import AppLogs, Metric
from repro.workloads.mobile import make_app


@pytest.fixture(scope="module")
def latency_run():
    return run_app("photo-editor", seed=4)


@pytest.fixture(scope="module")
def fps_run():
    return run_app("video-player", seed=4, max_seconds=4.0)


class TestEnergyMetrics:
    def test_latency_app_units_are_actions(self, latency_run):
        m = energy_metrics(latency_run)
        assert m.units == len(latency_run.app.logs.actions)
        assert m.energy_per_unit_mj > 0
        assert m.energy_delay_js > 0

    def test_fps_app_units_are_frames(self, fps_run):
        m = energy_metrics(fps_run)
        assert m.units == len(fps_run.app.logs.frames)
        assert m.units > 50
        assert m.energy_delay_js == 0.0

    def test_energy_consistency(self, fps_run):
        m = energy_metrics(fps_run)
        assert m.total_energy_mj == pytest.approx(fps_run.energy_mj())
        assert m.average_power_mw == pytest.approx(fps_run.avg_power_mw(), rel=1e-6)

    def test_compare_energy_directional(self):
        base = run_app("video-player", seed=4, max_seconds=4.0)
        small = run_app(
            "video-player", seed=4, max_seconds=4.0, core_config=CoreConfig(2, 0)
        )
        # Fewer cores, same frames delivered: less energy per frame.
        assert compare_energy(base, small) < 0.0

    def test_compare_energy_zero_baseline(self, fps_run):
        empty = run_app("video-player", seed=5, max_seconds=4.0)
        empty.app.logs.frames.clear()
        with pytest.raises(ZeroDivisionError):
            compare_energy(empty, fps_run)


class TestLatencyDistribution:
    def test_distribution_fields(self, latency_run):
        dist = latency_distribution(latency_run.app)
        assert dist.count == len(latency_run.app.logs.actions)
        assert dist.p50_s <= dist.p90_s <= dist.p99_s <= dist.worst_s
        assert dist.mean_s > 0
        assert dist.worst_action != "-"

    def test_sum_matches_total_latency(self, latency_run):
        dist = latency_distribution(latency_run.app)
        assert dist.mean_s * dist.count == pytest.approx(
            latency_run.latency_s(), rel=1e-6
        )

    def test_budget_classification(self, latency_run):
        tight = latency_distribution(latency_run.app, budget_s=0.001)
        loose = latency_distribution(latency_run.app, budget_s=100.0)
        assert tight.over_budget == tight.count
        assert loose.over_budget == 0

    def test_rejects_fps_app(self, fps_run):
        with pytest.raises(ValueError):
            latency_distribution(fps_run.app)

    def test_empty_log(self):
        app = make_app("browser")
        app.logs = AppLogs()
        dist = latency_distribution(app)
        assert dist.count == 0
        assert dist.over_budget_pct == 0.0

    def test_render(self, latency_run):
        assert "p90" in latency_distribution(latency_run.app).render()
