"""Golden-trace equivalence tests for the engine fast paths.

The fast paths (idle fast-forward, busy steady-state fast-forward, and
the deferred vectorized power pipeline) must be *bit-exact* with the
reference tick-by-tick loop: for every workload/config/seed combination
the busy, frequency, power, per-cluster CPU power, and wakeup trace
columns are compared with ``np.array_equal`` (no tolerance).
Configurations that the fast path must refuse (thermal model, GPU,
cluster-switching scheduler, env/config pins) are additionally checked
to have fast-forwarded zero ticks.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.platform.chip import CoreConfig
from repro.platform.coretypes import CoreType
from repro.platform.gpu import GpuSpec
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.platform.thermal import ThermalParams
from repro.sched.cluster_switch import ClusterSwitchingScheduler
from repro.sched.efficiency_sched import EfficiencyScheduler
from repro.sched.governor import (
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.sched.params import baseline_config
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, WaitSignal, Work
from repro.workloads.mobile import make_app


def run_pair(make_config, install):
    """Run the same scenario on the reference and fast paths."""
    sims = []
    for fastpath in (False, True):
        config = make_config()
        config.fastpath = fastpath
        sim = Simulator(config)
        install(sim)
        sim.run()
        sims.append(sim)
    return sims


def assert_traces_equal(ref, fast):
    tr_ref, tr_fast = ref.trace, fast.trace
    assert np.array_equal(tr_ref.busy, tr_fast.busy)
    assert np.array_equal(tr_ref.power_mw, tr_fast.power_mw)
    assert np.array_equal(tr_ref.wakeups, tr_fast.wakeups)
    for ct in (CoreType.LITTLE, CoreType.BIG):
        assert np.array_equal(tr_ref.freq_khz(ct), tr_fast.freq_khz(ct))
        assert np.array_equal(tr_ref.cpu_power_mw(ct), tr_fast.cpu_power_mw(ct))
    assert tr_ref.average_power_mw() == tr_fast.average_power_mw()
    assert ref.fastforward_ticks == 0  # reference path never fast-forwards


def standby_behavior(ctx):
    """A 1 Hz housekeeping timer: long idle spans between tiny bursts."""
    while True:
        yield Work(0.002)
        yield Sleep(1.0)


class TestGoldenTraceEquivalence:
    """Fast path produces byte-identical traces on eligible configs."""

    @pytest.mark.parametrize(
        "app,seed,kwargs",
        [
            ("pdf-reader", 1, {}),
            ("video-player", 2, {}),
            ("browser", 3, {"core_config": CoreConfig(little=2, big=2)}),
            ("voice-call", 1, {"scheduler_factory": EfficiencyScheduler}),
            ("social-feed", 4, {}),  # governors overridden below
            ("maps", 5, {}),  # pinned governors below
        ],
        ids=["pdf", "video", "browser-L2B2", "voice-efficiency",
             "social-ondemand", "maps-pinned"],
    )
    def test_mobile_app_traces_match(self, app, seed, kwargs):
        def make_config():
            extra = dict(kwargs)
            if app == "social-feed":
                # Ondemand has no idle_tick_span override, exercising the
                # base replay loop.
                extra["governors"] = {
                    CoreType.LITTLE: OndemandGovernor(),
                    CoreType.BIG: OndemandGovernor(),
                }
            elif app == "maps":
                extra["governors"] = {
                    CoreType.LITTLE: PowersaveGovernor(),
                    CoreType.BIG: PerformanceGovernor(),
                }
            return SimConfig(max_seconds=3.0, seed=seed, **extra)

        ref, fast = run_pair(make_config, lambda sim: make_app(app).install(sim))
        assert_traces_equal(ref, fast)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_standby_fast_forwards_and_matches(self, seed):
        def install(sim):
            sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))

        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=10.0, seed=seed), install
        )
        assert_traces_equal(ref, fast)
        # The whole run is idle except the 1 Hz bursts: most ticks must
        # have been covered by fast-forward spans.
        assert fast.fastforward_ticks > 0.8 * fast.max_ticks

    def test_low_util_app_actually_fast_forwards(self):
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=1),
            lambda sim: make_app("voice-call").install(sim),
        )
        assert fast.fastforward_ticks > 0
        assert fast.fastforward_spans > 0

    def test_sleepers_wake_in_fifo_order_across_paths(self):
        """Tasks due the same tick wake in spawn order (heap seq tiebreak)."""

        def make(order):
            def behavior(ctx):
                yield Sleep(0.5)
                order.append(ctx.task_name)
                yield Work(0.001)

            return behavior

        def run(fastpath):
            order = []
            sim = Simulator(SimConfig(max_seconds=2.0, seed=0, fastpath=fastpath))
            for name in ("a", "b", "c", "d"):
                sim.spawn(Task(name, make(order), COMPUTE_BOUND))
            sim.run()
            return order

        assert run(False) == run(True) == ["a", "b", "c", "d"]


def spec_behavior(ctx):
    """Pure compute, never sleeps — the busy steady-state showcase."""
    while True:
        yield Work(10.0)


def _install_spec(count):
    def install(sim):
        tasks = []
        for i in range(count):
            task = Task(f"spec-{i}", spec_behavior, COMPUTE_BOUND)
            tasks.append(task)
            sim.spawn(task)
        sim._test_tasks = tasks
    return install


class TestBusyFastForward:
    """Busy steady-state spans replay bit-exactly."""

    @pytest.mark.parametrize("count,seed", [(1, 0), (4, 1), (4, 7), (10, 3)])
    def test_spec_compute_traces_match(self, count, seed):
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=seed), _install_spec(count)
        )
        assert_traces_equal(ref, fast)
        assert fast.busy_fastpath_enabled
        # After governor convergence the whole run is steady-state.
        assert fast.busy_fastforward_ticks > 0.5 * fast.max_ticks
        assert fast.busy_fastforward_spans > 0

    def test_task_state_matches_after_busy_spans(self):
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=2), _install_spec(4)
        )
        for t_ref, t_fast in zip(ref._test_tasks, fast._test_tasks):
            assert t_ref.total_busy_s == t_fast.total_busy_s
            assert t_ref.remaining_units == t_fast.remaining_units
            assert t_ref.load.value == t_fast.load.value
            assert t_ref.migrations == t_fast.migrations
            assert t_ref.core_id == t_fast.core_id

    def test_wakeup_exactly_at_horizon(self):
        """A sleeper due mid-run bounds the span; its wake tick, load
        decay, and placement must be untouched by the replay."""

        def sleeper(ctx):
            while True:
                yield Sleep(1.0)
                yield Work(0.001)

        def install(sim):
            _install_spec(4)(sim)
            sim.spawn(Task("sleeper", sleeper, COMPUTE_BOUND))

        ref, fast = run_pair(lambda: SimConfig(max_seconds=4.0, seed=5), install)
        assert_traces_equal(ref, fast)
        assert fast.busy_fastforward_ticks > 0

    def test_migration_threshold_crossing_cuts_span(self):
        """A single ramping task crosses the up-migration threshold; the
        span must end at the crossing so the migration fires on time."""
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=2.0, seed=0), _install_spec(1)
        )
        assert_traces_equal(ref, fast)
        t_ref, t_fast = ref._test_tasks[0], fast._test_tasks[0]
        assert t_ref.migrations == t_fast.migrations
        assert t_ref.core_id == t_fast.core_id

    def test_input_boost_inside_span(self):
        """A touch event mid-run perturbs the governor; spans on either
        side must still replay bit-exactly."""

        def toucher(ctx):
            yield Sleep(0.9)
            ctx.notify_input()
            yield Work(0.001)
            yield Sleep(10.0)

        def install(sim):
            _install_spec(4)(sim)
            sim.spawn(Task("toucher", toucher, COMPUTE_BOUND))

        base = baseline_config()
        boosted = replace(base, governor=replace(base.governor, input_boost_ms=100))
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=4, scheduler=boosted), install
        )
        assert_traces_equal(ref, fast)
        assert fast.busy_fastforward_ticks > 0

    def test_restricted_core_config_matches(self):
        ref, fast = run_pair(
            lambda: SimConfig(
                max_seconds=2.0, seed=6,
                core_config=CoreConfig(little=2, big=1),
            ),
            _install_spec(3),
        )
        assert_traces_equal(ref, fast)

    def test_pinned_governors_fast_forward(self):
        def make_config():
            return SimConfig(
                max_seconds=2.0, seed=1,
                governors={
                    CoreType.LITTLE: PowersaveGovernor(),
                    CoreType.BIG: PerformanceGovernor(),
                },
            )

        ref, fast = run_pair(make_config, _install_spec(4))
        assert_traces_equal(ref, fast)
        assert fast.busy_fastforward_ticks > 0

    def test_governor_without_span_support_disables_busy_ff(self):
        """Ondemand has no ``busy_tick_span`` override: the busy fast
        path must refuse statically, and traces still match."""

        def make_config():
            return SimConfig(
                max_seconds=2.0, seed=1,
                governors={
                    CoreType.LITTLE: OndemandGovernor(),
                    CoreType.BIG: OndemandGovernor(),
                },
            )

        ref, fast = run_pair(make_config, _install_spec(4))
        assert not fast.busy_fastpath_enabled
        assert fast.busy_fastforward_ticks == 0
        assert_traces_equal(ref, fast)


class TestDeferredPower:
    """The deferred vectorized power pipeline is bit-exact and gated."""

    def test_enabled_on_default_fast_config(self):
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=2.0, seed=1), _install_spec(2)
        )
        assert fast.deferred_power_enabled
        assert not ref.deferred_power_enabled  # fastpath=False keeps per-tick
        assert_traces_equal(ref, fast)

    def test_thermal_keeps_per_tick_power(self):
        """Thermal feedback reads power each tick, so deferral is off
        (and traces still match via the classic path)."""
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=2.0, seed=1, thermal=ThermalParams()),
            _install_spec(2),
        )
        assert not fast.deferred_power_enabled
        assert_traces_equal(ref, fast)

    def test_gpu_keeps_per_tick_power(self):
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=2.0, seed=1, gpu=GpuSpec()),
            _install_spec(2),
        )
        assert not fast.deferred_power_enabled
        assert_traces_equal(ref, fast)

    def test_tick_hook_keeps_per_tick_power(self):
        """A tick hook may read trace power live, so the pipeline is not
        instantiated — and power must still be bit-exact per tick."""

        def run(fastpath, hook):
            sim = Simulator(SimConfig(max_seconds=2.0, seed=1, fastpath=fastpath))
            _install_spec(2)(sim)
            if hook:
                sim.add_tick_hook(lambda s: None)
            sim.run()
            return sim

        ref = run(False, hook=False)
        fast = run(True, hook=True)
        assert fast._deferred is None
        assert_traces_equal(ref, fast)

    def test_env_var_disables_deferred_power(self, monkeypatch):
        """``REPRO_ENGINE_FASTPATH=0`` pins the whole reference pipeline,
        including per-tick power."""
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        sim = Simulator(SimConfig(max_seconds=2.0, seed=1, fastpath=True))
        _install_spec(2)(sim)
        sim.run()
        assert not sim.deferred_power_enabled
        assert sim._deferred is None


class TestObservedEquivalence:
    """Observation sees identical streams modulo fast-forward markers."""

    @staticmethod
    def _run_observed(fastpath):
        from repro.obs import Observation

        sim = Simulator(SimConfig(max_seconds=2.5, seed=3, fastpath=fastpath))
        obs = Observation.attach(sim)

        def sleeper(ctx):
            while True:
                yield Sleep(0.4)
                yield Work(0.002)

        _install_spec(4)(sim)
        sim.spawn(Task("sleeper", sleeper, COMPUTE_BOUND))
        sim.run()
        return sim, obs

    def test_event_streams_match_modulo_ff_markers(self):
        from repro.obs import event_to_dict

        _ref_sim, ref_obs = self._run_observed(False)
        fast_sim, fast_obs = self._run_observed(True)
        assert fast_sim.busy_fastforward_ticks > 0

        skip = {"IdleFastForward", "BusyFastForward"}

        def stream(obs):
            # tids come from a process-global counter, so the two runs
            # number their tasks differently; names are the identity.
            events = []
            for e in obs.events:
                if type(e).__name__ in skip:
                    continue
                d = event_to_dict(e)
                d.pop("tid", None)
                events.append(d)
            return events

        assert stream(ref_obs) == stream(fast_obs)

    def test_metrics_match_modulo_ff_counters(self):
        _ref_sim, ref_obs = self._run_observed(False)
        _fast_sim, fast_obs = self._run_observed(True)

        def scrub(value):
            if isinstance(value, dict):
                return {
                    k: scrub(v)
                    for k, v in value.items()
                    if "fastforward" not in str(k)
                }
            return value

        assert scrub(ref_obs.snapshot().to_dict()) == scrub(
            fast_obs.snapshot().to_dict()
        )


class TestFastpathRefusal:
    """Configs whose idle ticks are not no-ops must never fast-forward."""

    def test_thermal_disables_fast_forward(self):
        def install(sim):
            sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))

        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=1, thermal=ThermalParams()),
            install,
        )
        assert not fast.fastpath_enabled
        assert fast.fastforward_ticks == 0
        assert_traces_equal(ref, fast)

    def test_gpu_disables_fast_forward(self):
        def install(sim):
            def behavior(ctx):
                chan = sim.channel("gpu-done")
                while True:
                    yield Work(0.001)
                    sim.gpu.submit(0.01, chan)
                    yield WaitSignal(chan)
                    yield Sleep(0.2)

            sim.spawn(Task("gpu-user", behavior, COMPUTE_BOUND))

        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=1, gpu=GpuSpec()), install
        )
        assert not fast.fastpath_enabled
        assert fast.fastforward_ticks == 0
        assert_traces_equal(ref, fast)

    def test_cluster_switching_scheduler_disables_fast_forward(self):
        ref, fast = run_pair(
            lambda: SimConfig(
                max_seconds=3.0, seed=1,
                scheduler_factory=ClusterSwitchingScheduler,
            ),
            lambda sim: make_app("voice-call").install(sim),
        )
        assert not fast.fastpath_enabled  # idle_tick_is_noop is False
        assert fast.fastforward_ticks == 0
        assert_traces_equal(ref, fast)

    def test_tick_hook_suppresses_fast_forward(self):
        """An observer hook must see every tick, so spans are disabled."""
        sim = Simulator(SimConfig(max_seconds=2.0, seed=0))
        sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))
        seen = []
        sim.add_tick_hook(lambda s: seen.append(s.tick))
        sim.run()
        assert sim.fastpath_enabled  # statically eligible...
        assert sim.fastforward_ticks == 0  # ...but dynamically refused
        assert len(seen) == len(sim.trace)

    def test_env_var_pins_reference_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        sim = Simulator(SimConfig(max_seconds=2.0, seed=0))
        sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))
        sim.run()
        assert not sim.fastpath_enabled
        assert sim.fastforward_ticks == 0

    def test_config_flag_pins_reference_path(self):
        sim = Simulator(SimConfig(max_seconds=2.0, seed=0, fastpath=False))
        sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))
        sim.run()
        assert not sim.fastpath_enabled
        assert sim.fastforward_ticks == 0
