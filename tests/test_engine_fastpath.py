"""Golden-trace equivalence tests for the idle fast-forward engine.

The fast path must be *bit-exact* with the reference tick-by-tick loop:
for every workload/config/seed combination the busy, frequency, power,
per-cluster CPU power, and wakeup trace columns are compared with
``np.array_equal`` (no tolerance).  Configurations that the fast path
must refuse (thermal model, GPU, cluster-switching scheduler, env/config
pins) are additionally checked to have fast-forwarded zero ticks.
"""

import numpy as np
import pytest

from repro.platform.chip import CoreConfig
from repro.platform.coretypes import CoreType
from repro.platform.gpu import GpuSpec
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.platform.thermal import ThermalParams
from repro.sched.cluster_switch import ClusterSwitchingScheduler
from repro.sched.efficiency_sched import EfficiencyScheduler
from repro.sched.governor import (
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, WaitSignal, Work
from repro.workloads.mobile import make_app


def run_pair(make_config, install):
    """Run the same scenario on the reference and fast paths."""
    sims = []
    for fastpath in (False, True):
        config = make_config()
        config.fastpath = fastpath
        sim = Simulator(config)
        install(sim)
        sim.run()
        sims.append(sim)
    return sims


def assert_traces_equal(ref, fast):
    tr_ref, tr_fast = ref.trace, fast.trace
    assert np.array_equal(tr_ref.busy, tr_fast.busy)
    assert np.array_equal(tr_ref.power_mw, tr_fast.power_mw)
    assert np.array_equal(tr_ref.wakeups, tr_fast.wakeups)
    for ct in (CoreType.LITTLE, CoreType.BIG):
        assert np.array_equal(tr_ref.freq_khz(ct), tr_fast.freq_khz(ct))
        assert np.array_equal(tr_ref.cpu_power_mw(ct), tr_fast.cpu_power_mw(ct))
    assert tr_ref.average_power_mw() == tr_fast.average_power_mw()
    assert ref.fastforward_ticks == 0  # reference path never fast-forwards


def standby_behavior(ctx):
    """A 1 Hz housekeeping timer: long idle spans between tiny bursts."""
    while True:
        yield Work(0.002)
        yield Sleep(1.0)


class TestGoldenTraceEquivalence:
    """Fast path produces byte-identical traces on eligible configs."""

    @pytest.mark.parametrize(
        "app,seed,kwargs",
        [
            ("pdf-reader", 1, {}),
            ("video-player", 2, {}),
            ("browser", 3, {"core_config": CoreConfig(little=2, big=2)}),
            ("voice-call", 1, {"scheduler_factory": EfficiencyScheduler}),
            ("social-feed", 4, {}),  # governors overridden below
            ("maps", 5, {}),  # pinned governors below
        ],
        ids=["pdf", "video", "browser-L2B2", "voice-efficiency",
             "social-ondemand", "maps-pinned"],
    )
    def test_mobile_app_traces_match(self, app, seed, kwargs):
        def make_config():
            extra = dict(kwargs)
            if app == "social-feed":
                # Ondemand has no idle_tick_span override, exercising the
                # base replay loop.
                extra["governors"] = {
                    CoreType.LITTLE: OndemandGovernor(),
                    CoreType.BIG: OndemandGovernor(),
                }
            elif app == "maps":
                extra["governors"] = {
                    CoreType.LITTLE: PowersaveGovernor(),
                    CoreType.BIG: PerformanceGovernor(),
                }
            return SimConfig(max_seconds=3.0, seed=seed, **extra)

        ref, fast = run_pair(make_config, lambda sim: make_app(app).install(sim))
        assert_traces_equal(ref, fast)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_standby_fast_forwards_and_matches(self, seed):
        def install(sim):
            sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))

        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=10.0, seed=seed), install
        )
        assert_traces_equal(ref, fast)
        # The whole run is idle except the 1 Hz bursts: most ticks must
        # have been covered by fast-forward spans.
        assert fast.fastforward_ticks > 0.8 * fast.max_ticks

    def test_low_util_app_actually_fast_forwards(self):
        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=1),
            lambda sim: make_app("voice-call").install(sim),
        )
        assert fast.fastforward_ticks > 0
        assert fast.fastforward_spans > 0

    def test_sleepers_wake_in_fifo_order_across_paths(self):
        """Tasks due the same tick wake in spawn order (heap seq tiebreak)."""

        def make(order):
            def behavior(ctx):
                yield Sleep(0.5)
                order.append(ctx.task_name)
                yield Work(0.001)

            return behavior

        def run(fastpath):
            order = []
            sim = Simulator(SimConfig(max_seconds=2.0, seed=0, fastpath=fastpath))
            for name in ("a", "b", "c", "d"):
                sim.spawn(Task(name, make(order), COMPUTE_BOUND))
            sim.run()
            return order

        assert run(False) == run(True) == ["a", "b", "c", "d"]


class TestFastpathRefusal:
    """Configs whose idle ticks are not no-ops must never fast-forward."""

    def test_thermal_disables_fast_forward(self):
        def install(sim):
            sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))

        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=1, thermal=ThermalParams()),
            install,
        )
        assert not fast.fastpath_enabled
        assert fast.fastforward_ticks == 0
        assert_traces_equal(ref, fast)

    def test_gpu_disables_fast_forward(self):
        def install(sim):
            def behavior(ctx):
                chan = sim.channel("gpu-done")
                while True:
                    yield Work(0.001)
                    sim.gpu.submit(0.01, chan)
                    yield WaitSignal(chan)
                    yield Sleep(0.2)

            sim.spawn(Task("gpu-user", behavior, COMPUTE_BOUND))

        ref, fast = run_pair(
            lambda: SimConfig(max_seconds=3.0, seed=1, gpu=GpuSpec()), install
        )
        assert not fast.fastpath_enabled
        assert fast.fastforward_ticks == 0
        assert_traces_equal(ref, fast)

    def test_cluster_switching_scheduler_disables_fast_forward(self):
        ref, fast = run_pair(
            lambda: SimConfig(
                max_seconds=3.0, seed=1,
                scheduler_factory=ClusterSwitchingScheduler,
            ),
            lambda sim: make_app("voice-call").install(sim),
        )
        assert not fast.fastpath_enabled  # idle_tick_is_noop is False
        assert fast.fastforward_ticks == 0
        assert_traces_equal(ref, fast)

    def test_tick_hook_suppresses_fast_forward(self):
        """An observer hook must see every tick, so spans are disabled."""
        sim = Simulator(SimConfig(max_seconds=2.0, seed=0))
        sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))
        seen = []
        sim.add_tick_hook(lambda s: seen.append(s.tick))
        sim.run()
        assert sim.fastpath_enabled  # statically eligible...
        assert sim.fastforward_ticks == 0  # ...but dynamically refused
        assert len(seen) == len(sim.trace)

    def test_env_var_pins_reference_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        sim = Simulator(SimConfig(max_seconds=2.0, seed=0))
        sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))
        sim.run()
        assert not sim.fastpath_enabled
        assert sim.fastforward_ticks == 0

    def test_config_flag_pins_reference_path(self):
        sim = Simulator(SimConfig(max_seconds=2.0, seed=0, fastpath=False))
        sim.spawn(Task("standby", standby_behavior, COMPUTE_BOUND))
        sim.run()
        assert not sim.fastpath_enabled
        assert sim.fastforward_ticks == 0
