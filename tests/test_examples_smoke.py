"""Smoke tests: every example script runs to completion.

The examples are the library's front door; they must never rot.  Each
runs in a subprocess with the repository's interpreter.  The
grid-search example (`scheduler_tuning.py`) is the slowest and runs
last; everything still finishes in about a minute total.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "video-player")
        assert "TLP statistics" in out
        assert "average FPS" in out

    def test_quickstart_rejects_unknown_app(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "solitaire"],
            capture_output=True, text=True,
        )
        assert result.returncode != 0

    def test_custom_app(self):
        out = run_example("custom_app.py")
        assert "navigation app" in out
        assert "verdict" in out

    def test_trace_replay_profiling(self):
        out = run_example("trace_replay_profiling.py")
        assert "Per-task execution profile" in out
        assert "analysis from the saved trace" in out

    def test_battery_life(self):
        out = run_example("battery_life.py")
        assert "battery hours" in out
        assert "longer than" in out

    def test_core_config_explorer(self):
        out = run_example("core_config_explorer.py", "video-player")
        assert "Pareto frontier" in out

    @pytest.mark.slow
    def test_scheduler_tuning(self):
        out = run_example("scheduler_tuning.py", timeout=420)
        assert "Best setting" in out
