"""Unit tests for the pluggable executor backends and report merging.

The :class:`~repro.runner.executors.Executor` protocol is the seam the
distributed backend plugs into; these tests pin the local halves — the
serial and process-pool backends, backend resolution in
``make_executor``, and :meth:`BatchReport.merge`'s deterministic
ordering — without any sockets involved (``tests/test_dist.py`` covers
the TCP side).
"""

import pytest

from repro.runner.batch import BatchReport, BatchRunner, JobRecord
from repro.runner.executors import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.runner.spec import RunResult, RunSpec

OK_KIND = f"{__name__}:_ok_kind"
RAISE_KIND = f"{__name__}:_always_raise_kind"


def _ok_kind(spec: RunSpec) -> RunResult:
    return RunResult(
        spec_key=spec.key(), workload=spec.workload, metric="fps",
        duration_s=0.01, avg_power_mw=100.0, energy_mj=1.0, avg_fps=60.0,
    )


def _always_raise_kind(spec: RunSpec) -> RunResult:
    raise ValueError(f"injected failure for {spec.workload}")


def _spec(seed: int) -> RunSpec:
    return RunSpec("w", kind=OK_KIND, seed=seed, max_seconds=1.0)


def _real_spec(seed: int) -> RunSpec:
    # Cohort groups go through execute_cohort, which builds real apps —
    # dotted-path fault kinds don't apply there.
    return RunSpec(
        "pdf-reader", seed=seed, max_seconds=0.5, trace_policy="none",
    )


def _drain(executor: Executor, n: int):
    completions = []
    while len(completions) < n:
        got = executor.poll()
        assert got, "poll returned nothing with work outstanding"
        completions.extend(got)
    return completions


# ---------------------------------------------------------------------------
# SerialExecutor
# ---------------------------------------------------------------------------


def test_serial_executor_fifo_and_untransported():
    with SerialExecutor() as ex:
        assert ex.transported is False
        assert ex.parallelism() == 1
        ex.submit(1, [_spec(1)], None)
        ex.submit(2, [_spec(2)], None)
        assert ex.outstanding() == 2
        first = ex.poll()
        assert [c.token for c in first] == [1]
        second = ex.poll()
        assert [c.token for c in second] == [2]
        assert ex.outstanding() == 0
        assert ex.poll() == []
        result = second[0].payload
        assert isinstance(result, RunResult) and result.avg_fps == 60.0


def test_serial_executor_cohort_payload_is_list():
    with SerialExecutor() as ex:
        ex.submit(7, [_real_spec(1), _real_spec(2)], None)
        (comp,) = _drain(ex, 1)
        assert comp.error is None
        assert [r.spec_key for r in comp.payload] == [
            _real_spec(1).key(), _real_spec(2).key(),
        ]


def test_serial_executor_captures_errors():
    bad = RunSpec("w", kind=RAISE_KIND, max_seconds=1.0)
    with SerialExecutor() as ex:
        ex.submit(3, [bad], None)
        (comp,) = _drain(ex, 1)
        assert comp.payload is None
        assert isinstance(comp.error, ValueError)
        assert comp.worker_died is False


# ---------------------------------------------------------------------------
# PoolExecutor
# ---------------------------------------------------------------------------


def test_pool_executor_runs_groups():
    with PoolExecutor(workers=2) as ex:
        assert ex.transported is True
        assert ex.parallelism() == 2
        ex.submit(1, [_spec(1)], None)
        ex.submit(2, [_real_spec(2), _real_spec(3)], None)
        completions = {c.token: c for c in _drain(ex, 2)}
        assert completions[1].error is None
        assert completions[1].payload.spec_key == _spec(1).key()
        assert [r.spec_key for r in completions[2].payload] == [
            _real_spec(2).key(), _real_spec(3).key(),
        ]


# ---------------------------------------------------------------------------
# make_executor resolution
# ---------------------------------------------------------------------------


def test_make_executor_resolution():
    ex, owned = make_executor(None, workers=4, serial=True)
    assert isinstance(ex, SerialExecutor) and owned

    ex, owned = make_executor(None, workers=4, serial=False)
    assert isinstance(ex, PoolExecutor) and owned
    assert ex.parallelism() == 4
    ex.close()

    ex, owned = make_executor("serial", workers=4, serial=False)
    assert isinstance(ex, SerialExecutor) and owned

    ex, owned = make_executor("pool", workers=2, serial=True)
    assert isinstance(ex, PoolExecutor) and owned
    ex.close()

    shared = SerialExecutor()
    ex, owned = make_executor(shared, workers=4, serial=False)
    assert ex is shared and not owned

    with pytest.raises(ValueError):
        make_executor("carrier-pigeon", workers=1, serial=False)


def test_runner_accepts_executor_instance_and_does_not_close_it():
    shared = SerialExecutor()
    runner = BatchRunner(cache=None, executor=shared)
    report = runner.run([_spec(1), _spec(2)])
    assert report.succeeded()
    # Shared executors stay usable — that is what lets two runners share
    # one coordinator for global dedup.
    report2 = BatchRunner(cache=None, executor=shared).run([_spec(3)])
    assert report2.succeeded()


# ---------------------------------------------------------------------------
# BatchReport.merge
# ---------------------------------------------------------------------------


def _report(labels, *, workers=1, wall_s=1.0, hits=0, misses=0,
            transport=0, shm=0):
    jobs = []
    results = []
    for i, label in enumerate(labels):
        spec = RunSpec(label, kind=OK_KIND, max_seconds=1.0)
        jobs.append(JobRecord(
            index=i, spec_key=spec.key(), label=label, status="ok",
            attempts=1, duration_s=0.1,
        ))
        results.append(RunResult(
            spec_key=spec.key(), workload=label, metric="fps",
            duration_s=0.01, avg_power_mw=100.0, energy_mj=1.0, avg_fps=60.0,
        ))
    return BatchReport(
        results=results, jobs=jobs, workers=workers, wall_s=wall_s,
        cache_hits=hits, cache_misses=misses, transport_bytes=transport,
        shm_bytes=shm,
    )


def test_merge_orders_by_label_not_arrival():
    merged = BatchReport.merge([
        _report(["delta", "bravo"], workers=2, wall_s=3.0, hits=1,
                transport=10),
        _report(["alpha", "charlie"], workers=4, wall_s=5.0, misses=2,
                transport=32, shm=8),
    ])
    assert [j.label for j in merged.jobs] == [
        "alpha", "bravo", "charlie", "delta",
    ]
    # Re-indexed densely, and each job's result rides along with it.
    assert [j.index for j in merged.jobs] == [0, 1, 2, 3]
    for job in merged.jobs:
        assert merged.results[job.index].workload == job.label
    assert merged.workers == 6
    assert merged.wall_s == 5.0  # max: the executors ran concurrently
    assert merged.cache_hits == 1
    assert merged.cache_misses == 2
    assert merged.transport_bytes == 42
    assert merged.shm_bytes == 8


def test_merge_is_stable_for_duplicate_specs():
    a = _report(["same", "same"])
    b = _report(["same"])
    b.results[0].energy_mj = 99.0  # tag report b's copy
    merged = BatchReport.merge([a, b])
    assert [j.label for j in merged.jobs] == ["same"] * 3
    # Stable sort: a's two copies first, then b's tagged copy.
    assert [r.energy_mj for r in merged.results] == [1.0, 1.0, 99.0]


def test_merge_empty_and_identity():
    empty = BatchReport.merge([])
    assert empty.n_jobs == 0 and empty.wall_s == 0.0

    one = _report(["alpha", "bravo"], workers=3, wall_s=2.0)
    merged = BatchReport.merge([one])
    assert [j.label for j in merged.jobs] == ["alpha", "bravo"]
    assert merged.workers == 3 and merged.wall_s == 2.0
