"""Tests for experiment runners (small-scale runs; full scale in benchmarks/)."""

import pytest

from repro.experiments.common import (
    fixed_governors,
    relative_change_pct,
    run_spec_kernel,
    single_core_config,
)
from repro.experiments.fig02_03_spec import run_spec_comparison
from repro.experiments.fig04_05_corecompare import (
    run_fps_comparison,
    run_latency_comparison,
)
from repro.experiments.fig06_util_power import run_util_power
from repro.experiments.fig07_08_coreconfig import run_core_config_sweep
from repro.experiments.fig09_10_freq import run_frequency_residency
from repro.experiments.fig11_12_13_params import run_param_sweep
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.table3_4_tlp import run_tlp_tables
from repro.experiments.table5_efficiency import run_efficiency_table
from repro.core.study import CharacterizationStudy
from repro.platform.chip import exynos5422
from repro.platform.coretypes import CoreType
from repro.sched.params import variant_configs
from repro.workloads.spec import spec_benchmark


class TestCommon:
    def test_single_core_configs(self):
        assert single_core_config(CoreType.LITTLE).label() == "L1"
        assert single_core_config(CoreType.BIG).label() == "B1"

    def test_fixed_governors_default_to_max(self):
        chip = exynos5422()
        governors = fixed_governors(chip)
        assert governors[CoreType.LITTLE].freq_khz == 1_300_000
        assert governors[CoreType.BIG].freq_khz == 1_900_000

    def test_relative_change(self):
        assert relative_change_pct(110, 100) == pytest.approx(10.0)
        with pytest.raises(ZeroDivisionError):
            relative_change_pct(1, 0)

    def test_run_spec_kernel_returns_time_and_power(self):
        elapsed, power, trace = run_spec_kernel(
            spec_benchmark("hmmer"), CoreType.LITTLE, 1_300_000
        )
        assert elapsed > 1.0
        assert power > 300.0


class TestFig2and3:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.workloads.spec import SPEC_BENCHMARKS
        picks = [spec_benchmark(n) for n in ("perlbench", "mcf", "hmmer")]
        return run_spec_comparison(benchmarks=picks)

    def test_big_wins_at_equal_frequency(self, result):
        for kernel in result.elapsed_s:
            assert result.speedup(kernel, "big@1.3") > 1.0

    def test_cache_sensitive_kernel_largest_speedup(self, result):
        assert result.speedup("mcf", "big@1.3") > result.speedup("hmmer", "big@1.3")

    def test_low_ilp_loses_at_min_big_frequency(self, result):
        assert result.speedup("perlbench", "big@0.8") < 1.0

    def test_power_ratios_match_paper(self, result):
        assert 2.0 < result.power_ratio("big@1.3") < 2.6
        assert 1.3 < result.power_ratio("big@0.8") < 1.7

    def test_render(self, result):
        out = result.render()
        assert "Figure 2" in out and "Figure 3" in out


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_util_power(
            utilizations=[0.0, 0.5, 1.0],
            freqs_khz={
                CoreType.LITTLE: [500_000, 1_300_000],
                CoreType.BIG: [800_000, 1_900_000],
            },
            sim_seconds=1.0,
        )

    def test_power_rises_with_utilization(self, result):
        for core_type, freqs in result.power_mw.items():
            for freq in freqs:
                series = result.series(core_type, freq)
                assert series == sorted(series)

    def test_slope_steeper_at_high_frequency(self, result):
        assert result.slope_mw(CoreType.LITTLE, 1_300_000) > result.slope_mw(
            CoreType.LITTLE, 500_000
        )
        assert result.slope_mw(CoreType.BIG, 1_900_000) > result.slope_mw(
            CoreType.BIG, 800_000
        )

    def test_big_range_above_little(self, result):
        big_min = min(result.series(CoreType.BIG, 800_000))
        little_series = result.series(CoreType.LITTLE, 1_300_000)
        assert big_min > little_series[0]  # big idle above little idle

    def test_render(self, result):
        assert "Figure 6" in result.render()


class TestAppComparisons:
    def test_latency_comparison_shape(self):
        result = run_latency_comparison(apps=["photo-editor"])
        assert result.latency_reduction_pct["photo-editor"] > 0
        assert result.power_increase_pct["photo-editor"] > 0
        assert "Figure 4" in result.render()

    def test_fps_comparison_shape(self):
        result = run_fps_comparison(apps=["video-player"])
        # HW-decoded video: FPS does not depend on core type.
        assert abs(result.avg_fps_improvement_pct["video-player"]) < 3.0
        assert "Figure 5" in result.render()


class TestCoreConfigSweep:
    def test_single_app_two_configs(self):
        result = run_core_config_sweep(apps=["video-player"], configs=["L2", "L4+B1"])
        perf = result.perf_change_pct["video-player"]
        power = result.power_saving_pct["video-player"]
        # Video playback survives on two little cores...
        assert perf["L2"] > -10.0
        # ...and fewer cores never consume more power than the baseline.
        assert power["L2"] > 0.0
        assert power["L2"] >= power["L4+B1"] - 1.0


class TestStudyBackedExperiments:
    @pytest.fixture(scope="class")
    def study(self):
        return CharacterizationStudy(seed=7)

    def test_tlp_tables(self, study):
        result = run_tlp_tables(study=study, apps=["video-player", "encoder"])
        assert result.stats["encoder"].big_active_pct > 30.0
        assert result.stats["video-player"].big_active_pct < 5.0
        assert result.matrices["encoder"].sum() == pytest.approx(100.0)
        assert "Table III" in result.render()

    def test_frequency_residency(self, study):
        result = run_frequency_residency(study=study, apps=["video-player"])
        little = result.residency[CoreType.LITTLE]["video-player"]
        # Video playback parks the little cluster at low frequencies.
        assert result.low_freq_share(CoreType.LITTLE, "video-player") > 50.0
        assert sum(little.values()) == pytest.approx(100.0)
        assert "Figure 9" in result.render()

    def test_efficiency_table(self, study):
        result = run_efficiency_table(study=study, apps=["video-player"])
        b = result.breakdowns["video-player"]
        # The dominant min/<50% finding of the paper.
        assert b.min_pct + b.under_50_pct > 50.0
        assert "Table V" in result.render()


class TestParamSweep:
    def test_single_variant_single_app(self):
        variant = [v for v in variant_configs() if v.name == "interval-100"]
        result = run_param_sweep(apps=["video-player"], variants=variant)
        assert "interval-100" in result.power_saving_pct
        avg, lo, hi = result.power_summary("interval-100")
        assert lo <= avg <= hi
        assert "Figure 11" in result.render()


class TestRegistry:
    def test_all_fifteen_artifacts_registered(self):
        paper_artifacts = {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13",
            "table3", "table4", "table5",
        }
        assert paper_artifacts <= set(EXPERIMENTS)
        extensions = {e for e in EXPERIMENTS if e.startswith("ext-")}
        assert extensions == {
            "ext-tiny", "ext-sched", "ext-governors", "ext-thermal",
            "ext-switching", "ext-energy", "ext-boost", "ext-multitask",
            "ext-gpu",
        }
        assert paper_artifacts | extensions == set(EXPERIMENTS)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_shared_runners(self):
        assert get_experiment("fig2").runner is get_experiment("fig3").runner
        assert get_experiment("table3").runner is get_experiment("table4").runner
