"""Property tests for :mod:`repro.explore.pareto`.

The frontier math underpins both the study artifact and the adaptive
sampler's promotion order, so the invariants are pinned with hypothesis
rather than hand-picked examples: mutual non-domination, dominated
exclusion, permutation/duplication invariance, and hypervolume
monotonicity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.pareto import (
    dominates,
    hypervolume,
    pareto_front,
    pareto_indices,
    pareto_rank_order,
    reference_point,
)

# Small finite grid of coordinates: collisions (and therefore duplicate
# and partially-tied vectors) are common, which is exactly where naive
# frontier implementations go wrong.
coord = st.integers(min_value=0, max_value=8).map(float)
vec2 = st.tuples(coord, coord)
points2 = st.lists(vec2, min_size=1, max_size=40)


class TestDominates:
    def test_strict_in_one_component(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert dominates((0.5, 3.0), (1.0, 3.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_incomparable(self):
        assert not dominates((0.0, 5.0), (5.0, 0.0))
        assert not dominates((5.0, 0.0), (0.0, 5.0))

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    @given(a=vec2, b=vec2)
    def test_antisymmetric(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))


class TestParetoIndices:
    @given(pts=points2)
    def test_members_mutually_non_dominated(self, pts):
        front = pareto_indices(pts)
        for i in front:
            for j in front:
                assert not dominates(pts[i], pts[j])

    @given(pts=points2)
    def test_non_members_dominated_by_some_member(self, pts):
        front = set(pareto_indices(pts))
        assert front, "a non-empty point set always has a frontier"
        for i in range(len(pts)):
            if i in front:
                continue
            assert any(dominates(pts[j], pts[i]) for j in front), (
                f"point {pts[i]} excluded but undominated"
            )

    @given(pts=points2, seed=st.integers(min_value=0, max_value=2**16))
    def test_front_invariant_under_permutation(self, pts, seed):
        from random import Random

        shuffled = list(pts)
        Random(seed).shuffle(shuffled)
        assert pareto_front(shuffled) == pareto_front(pts)

    @given(pts=points2)
    def test_front_invariant_under_duplication(self, pts):
        assert pareto_front(pts + pts) == pareto_front(pts)

    @given(pts=points2)
    def test_duplicated_frontier_vectors_all_kept(self, pts):
        doubled = pts + pts
        kept = {tuple(doubled[i]) for i in pareto_indices(doubled)}
        for v in pareto_front(pts):
            n = sum(1 for i in pareto_indices(doubled) if tuple(doubled[i]) == v)
            assert n == 2 * pts.count(v)
        assert kept == set(pareto_front(pts))

    @given(pts=st.lists(st.tuples(coord, coord, coord), min_size=1, max_size=15))
    def test_quadratic_fallback_matches_contract(self, pts):
        """3-objective inputs exercise the generic (non-sweep) path."""
        front = set(pareto_indices(pts))
        for i in range(len(pts)):
            if i in front:
                assert not any(dominates(pts[j], pts[i]) for j in front)
            else:
                assert any(dominates(pts[j], pts[i]) for j in front)


class TestParetoRankOrder:
    @given(pts=points2)
    def test_is_permutation(self, pts):
        order = pareto_rank_order(pts)
        assert sorted(order) == list(range(len(pts)))

    @given(pts=points2)
    def test_first_front_is_prefix(self, pts):
        order = pareto_rank_order(pts)
        front = set(pareto_indices(pts))
        assert set(order[: len(front)]) == front


class TestHypervolume:
    @given(pts=points2)
    def test_non_negative_and_bounded(self, pts):
        ref = reference_point(pts)
        hv = hypervolume(pts, ref)
        assert hv >= 0.0
        assert hv <= ref[0] * ref[1] + 1e-9

    @given(pts=points2, extra=vec2)
    def test_monotone_under_added_point(self, pts, extra):
        ref = reference_point(pts + [extra])
        assert hypervolume(pts + [extra], ref) >= hypervolume(pts, ref) - 1e-9

    @given(pts=points2)
    def test_only_frontier_contributes(self, pts):
        ref = reference_point(pts)
        front = [pts[i] for i in pareto_indices(pts)]
        assert hypervolume(pts, ref) == pytest.approx(hypervolume(front, ref))

    def test_single_point_rectangle(self):
        assert hypervolume([(1.0, 1.0)], (3.0, 4.0)) == pytest.approx(6.0)

    def test_point_outside_ref_contributes_nothing(self):
        assert hypervolume([(5.0, 5.0)], (3.0, 3.0)) == 0.0

    def test_non_2d_ref_raises(self):
        with pytest.raises(ValueError):
            hypervolume([(1.0, 1.0)], (1.0, 1.0, 1.0))


class TestReferencePoint:
    @given(pts=points2)
    def test_weakly_dominated_by_every_point(self, pts):
        ref = reference_point(pts)
        for p in pts:
            assert p[0] < ref[0] and p[1] < ref[1]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            reference_point([])
