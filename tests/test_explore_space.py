"""Tests for :mod:`repro.explore.space` — axes, budgets, and the
deterministic ``DesignPoint -> RunSpec`` lowering."""

from __future__ import annotations

import pytest

from repro.explore.space import (
    AXIS_DEFAULTS,
    BIG_CORE_MM2,
    L2_MM2_PER_KB,
    LITTLE_CORE_MM2,
    Budget,
    DesignPoint,
    DesignSpace,
    TopologyParams,
    lower_point,
    reference_space,
)
from repro.runner.spec import LABEL_COMPONENT_MAX


class TestTopologyParams:
    def test_defaults_are_the_paper_chip(self):
        t = TopologyParams()
        assert (t.little_cores, t.big_cores) == (4, 4)
        assert t.chip_spec().name.startswith("dse-L4x1300")
        assert t.core_config().label() == "L4+B4"

    def test_area_is_cores_plus_l2(self):
        t = TopologyParams()
        expected = (
            4 * LITTLE_CORE_MM2 + 512 * L2_MM2_PER_KB
            + 4 * BIG_CORE_MM2 + 2048 * L2_MM2_PER_KB
        )
        assert t.area_mm2() == pytest.approx(expected)

    def test_disabled_cluster_contributes_no_area(self):
        little_only = TopologyParams(big_cores=0)
        assert little_only.area_mm2() == pytest.approx(
            4 * LITTLE_CORE_MM2 + 512 * L2_MM2_PER_KB
        )

    def test_zero_core_cluster_lowers_to_valid_chip(self):
        t = TopologyParams(big_cores=0)
        chip = t.chip_spec()
        assert chip.big_cluster.num_cores == 1  # physical floor
        assert t.core_config().big == 0  # but disabled

    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            TopologyParams(little_cores=0, big_cores=0)

    def test_opp_truncation_preserves_curve(self):
        t = TopologyParams(big_max_khz=1_400_000)
        table = t.chip_spec().big_cluster.opp_table
        assert table.max_khz <= 1_400_000
        full = TopologyParams().chip_spec().big_cluster.opp_table
        assert table.voltage_at(table.max_khz) == full.voltage_at(table.max_khz)

    def test_truncation_below_table_raises(self):
        with pytest.raises(ValueError):
            TopologyParams(big_max_khz=1_000).chip_spec()

    def test_peak_power_scales_with_cores_and_frequency(self):
        base = TopologyParams()
        fewer = TopologyParams(big_cores=2)
        slower = TopologyParams(big_max_khz=1_400_000)
        assert fewer.peak_power_mw() < base.peak_power_mw()
        assert slower.peak_power_mw() < base.peak_power_mw()


class TestBudget:
    def test_area_bound(self):
        assert Budget(max_area_mm2=21.0).admits(TopologyParams())
        assert not Budget(max_area_mm2=19.0).admits(TopologyParams())

    def test_power_bound(self):
        tight = Budget(max_power_mw=1.0)
        assert not tight.admits(TopologyParams())
        assert Budget(max_power_mw=1e9).admits(TopologyParams())

    def test_none_disables_bound(self):
        assert Budget().admits(TopologyParams(big_cores=16))


class TestDesignPoint:
    def test_unknown_axis_rejected(self):
        with pytest.raises(KeyError, match="unknown design axes"):
            DesignPoint.from_mapping({"ring_oscillators": 3})

    def test_defaults_fill_missing_axes(self):
        p = DesignPoint.from_mapping({"big_cores": 2})
        assert p.get("big_cores") == 2
        assert p.get("little_cores") == AXIS_DEFAULTS["little_cores"]

    def test_workload_string_normalized_to_tuple(self):
        p = DesignPoint.from_mapping({"workloads": "browser"})
        assert p.workloads() == ("browser",)

    def test_key_is_stable_and_content_addressed(self):
        a = DesignPoint.from_mapping({"big_cores": 2})
        b = DesignPoint.from_mapping({"big_cores": 2})
        c = DesignPoint.from_mapping({"big_cores": 4})
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_scheduler_config_name_encodes_params(self):
        p = DesignPoint.from_mapping({"hmp_up": 550, "gov_target_load": 0.6})
        cfg = p.scheduler_config()
        assert cfg.name == "dse-u550-d256-w32-i20-t60-h80-f80"
        assert cfg.hmp.up_threshold == 550
        assert cfg.governor.target_load == pytest.approx(0.6)


class TestDesignSpace:
    def test_size_is_cartesian_product(self):
        space = DesignSpace({"big_cores": (0, 2, 4), "hmp_up": (550, 700)})
        assert space.size() == 6

    def test_budget_filters_points(self):
        space = DesignSpace(
            {"big_cores": (0, 2, 8)}, budget=Budget(max_area_mm2=17.0)
        )
        counts = {p.get("big_cores") for p in space.points()}
        assert counts == {0, 2}  # 8 big cores blow the area budget

    def test_invalid_scheduler_combos_skipped(self):
        space = DesignSpace({"hmp_up": (100, 700)})  # 100 <= down=256
        assert [p.get("hmp_up") for p in space.points()] == [700]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace({"big_cores": ()})

    def test_key_tracks_budget_and_axes(self):
        a = DesignSpace({"big_cores": (0, 2)})
        b = DesignSpace({"big_cores": (0, 2)}, budget=Budget(max_area_mm2=15.0))
        c = DesignSpace({"big_cores": (0, 4)})
        assert a.key() != b.key()
        assert a.key() != c.key()
        assert a.key() == DesignSpace({"big_cores": (0, 2)}).key()


class TestReferenceSpace:
    def test_scale_and_budget(self):
        space = reference_space(workloads=("browser",))
        points = space.feasible_points()
        assert space.size() == 320
        assert len(points) == 256

    def test_paper_pick_is_feasible_but_six_big_is_not(self):
        space = reference_space(workloads=("browser",))
        configs = {
            (p.get("little_cores"), p.get("big_cores")) for p in space.points()
        }
        assert (4, 4) in configs  # the paper's Exynos 5422 topology
        assert not any(big == 6 for _, big in configs)


class TestLowering:
    def test_one_spec_per_workload(self):
        p = DesignPoint.from_mapping({"workloads": ("browser", "pdf-reader")})
        specs = lower_point(p, max_seconds=2.0)
        assert [s.workload for s in specs] == ["browser", "pdf-reader"]

    def test_specs_ship_no_traces(self):
        (spec,) = lower_point(
            DesignPoint.from_mapping({"workloads": "browser"}), max_seconds=2.0
        )
        assert spec.trace_policy == "none"
        assert "power_summary" in spec.reductions

    def test_lowering_is_deterministic(self):
        p = DesignPoint.from_mapping({"big_cores": 2, "workloads": "browser"})
        keys_a = [s.key() for s in lower_point(p, max_seconds=2.0)]
        keys_b = [s.key() for s in lower_point(p, max_seconds=2.0)]
        assert keys_a == keys_b

    def test_distinct_points_get_distinct_keys(self):
        base = {"workloads": "browser"}
        keys = set()
        for override in (
            {},
            {"big_cores": 2},
            {"big_max_khz": 1_400_000},  # exercises OPPTable content hashing
            {"big_l2_kb": 1024},
            {"hmp_up": 550},
            {"gov_target_load": 0.6},
        ):
            p = DesignPoint.from_mapping({**base, **override})
            (spec,) = lower_point(p, max_seconds=2.0)
            keys.add(spec.key())
        assert len(keys) == 6

    def test_fidelity_changes_the_key(self):
        p = DesignPoint.from_mapping({"workloads": "browser"})
        (short,) = lower_point(p, max_seconds=1.0)
        (full,) = lower_point(p, max_seconds=2.0)
        assert short.key() != full.key()

    def test_labels_stay_bounded(self):
        p = DesignPoint.from_mapping(
            {"big_max_khz": 1_400_000, "hmp_up": 550, "workloads": "browser"}
        )
        (spec,) = lower_point(p, max_seconds=2.0)
        for component in spec.label().split("/"):
            assert len(component) <= LABEL_COMPONENT_MAX
