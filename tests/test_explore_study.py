"""Acceptance tests for :mod:`repro.explore.study`.

The module-scoped fixtures run the documented reference scenario once
per sampler (single-workload mix, short full horizon) against a shared
on-disk cache, then every test inspects those results:

- a >= 200-point budget-constrained study completes and emits a
  perf/energy frontier artifact;
- re-running the identical study resolves 100% from the result cache;
- the adaptive sampler lands within 5% of the grid-search hypervolume
  while spending at most 35% of the grid's full-horizon simulations;
- the JSONL checkpoint replays evaluations without touching the runner.
"""

from __future__ import annotations

import json

import pytest

from repro.explore.samplers import AdaptiveSampler, GridSampler
from repro.explore.space import DesignSpace, reference_space
from repro.explore.study import ExploreStudy, StudyResult, point_objectives
from repro.obs.metrics import global_metrics
from repro.runner import BatchRunner, ResultCache, RunResult

#: Short full horizon keeps the 256-point reference grid affordable in
#: CI while leaving the half-horizon rung (0.6 s) above the engine's
#: warmup transient.
FULL_HORIZON_S = 1.2


def _runner(cache_root: str) -> BatchRunner:
    return BatchRunner(workers=2, cache=ResultCache(root=str(cache_root)))


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("explore-cache"))


@pytest.fixture(scope="module")
def grid_result(cache_root) -> StudyResult:
    study = ExploreStudy(
        reference_space(workloads=("browser",)),
        GridSampler(),
        runner=_runner(cache_root),
        full_horizon_s=FULL_HORIZON_S,
        seed=0,
    )
    return study.run()


@pytest.fixture(scope="module")
def adaptive_result(cache_root, grid_result) -> StudyResult:
    # Shares the cache with the grid study: full-horizon rungs replay as
    # hits, but full_horizon_simulations() still counts what the sampler
    # *requested* — the budget comparison below is cache-independent.
    study = ExploreStudy(
        reference_space(workloads=("browser",)),
        AdaptiveSampler(),
        runner=_runner(cache_root),
        full_horizon_s=FULL_HORIZON_S,
        seed=0,
    )
    return study.run()


class TestGridStudy:
    def test_completes_at_scale_under_budget(self, grid_result):
        assert len(grid_result.full_evaluations()) >= 200
        assert all(e.objectives is not None for e in grid_result.evaluations)
        # Every evaluated topology honored the area budget.
        budget = grid_result.space.budget
        for e in grid_result.evaluations:
            assert e.point.topology().area_mm2() <= budget.max_area_mm2

    def test_frontier_is_non_empty_and_non_dominated(self, grid_result):
        frontier = grid_result.frontier()
        assert frontier
        from repro.explore.pareto import dominates

        objs = [e.objectives for e in frontier]
        for a in objs:
            assert not any(dominates(b, a) for b in objs)

    def test_artifact_round_trips(self, grid_result, tmp_path):
        path = tmp_path / "frontier.json"
        grid_result.save(str(path))
        payload = json.loads(path.read_text())
        assert payload["study"]["space_key"] == grid_result.space.key()
        assert payload["frontier_size"] == len(grid_result.frontier())
        assert payload["frontier"], "artifact must carry a non-empty frontier"
        for entry in payload["frontier"]:
            assert set(entry) >= {"params", "perf_cost", "energy_mj", "area_mm2"}
        assert payload["hypervolume"] == pytest.approx(grid_result.hypervolume())

    def test_render_mentions_sampler_and_frontier(self, grid_result):
        text = grid_result.render()
        assert "grid sampler" in text
        assert "Pareto frontier" in text

    def test_metrics_registry_tracks_progress(self, grid_result):
        reg = global_metrics()
        assert reg.counter("explore.points").value >= len(grid_result.evaluations)
        assert reg.gauge("explore.frontier_size").value >= 1
        assert reg.gauge("explore.hypervolume").value > 0


class TestCacheResume:
    def test_rerun_resolves_fully_from_cache(self, cache_root, grid_result):
        study = ExploreStudy(
            reference_space(workloads=("browser",)),
            GridSampler(),
            runner=_runner(cache_root),
            full_horizon_s=FULL_HORIZON_S,
            seed=0,
        )
        rerun = study.run()
        assert rerun.cache_misses == 0
        assert rerun.cache_hits == len(grid_result.evaluations)
        assert [e.objectives for e in rerun.evaluations] == [
            e.objectives for e in grid_result.evaluations
        ]

    def test_different_seed_misses(self, cache_root):
        space = DesignSpace({"workloads": (("browser",),)})
        study = ExploreStudy(
            space,
            GridSampler(),
            runner=_runner(cache_root),
            full_horizon_s=0.5,
            seed=99,
        )
        result = study.run()
        assert result.cache_misses == 1


class TestAdaptiveSampler:
    def test_within_5pct_of_grid_hypervolume(self, grid_result, adaptive_result):
        ref = grid_result.ref_point()
        hv_grid = grid_result.hypervolume(ref)
        hv_adaptive = adaptive_result.hypervolume(ref)
        assert hv_grid > 0
        assert hv_adaptive >= 0.95 * hv_grid, (
            f"adaptive hv {hv_adaptive:.4g} < 95% of grid hv {hv_grid:.4g}"
        )

    def test_spends_at_most_35pct_of_full_horizon_sims(
        self, grid_result, adaptive_result
    ):
        grid_sims = grid_result.full_horizon_simulations()
        adaptive_sims = adaptive_result.full_horizon_simulations()
        assert adaptive_sims <= 0.35 * grid_sims, (
            f"{adaptive_sims} full-horizon sims > 35% of grid's {grid_sims}"
        )

    def test_budget_helper_matches_observed_spend(self, adaptive_result):
        sampler = AdaptiveSampler()
        n = 256
        assert adaptive_result.full_horizon_simulations() <= (
            sampler.full_horizon_budget(n)
        )


class TestCheckpoint:
    SPACE_AXES = {"big_cores": (0, 2), "workloads": (("browser",),)}

    def _study(self, cache_root, checkpoint, seed=0):
        return ExploreStudy(
            DesignSpace(self.SPACE_AXES),
            GridSampler(),
            runner=_runner(cache_root),
            full_horizon_s=0.5,
            seed=seed,
            checkpoint_path=str(checkpoint),
        )

    def test_resume_replays_without_the_runner(self, cache_root, tmp_path):
        ckpt = tmp_path / "study.jsonl"
        first = self._study(cache_root, ckpt).run()
        assert not any(e.from_checkpoint for e in first.evaluations)

        resumed = self._study(cache_root, ckpt).run()
        assert all(e.from_checkpoint for e in resumed.evaluations)
        # The runner never saw a spec — not even cache hits.
        assert resumed.cache_hits == 0 and resumed.cache_misses == 0
        assert [e.objectives for e in resumed.evaluations] == [
            e.objectives for e in first.evaluations
        ]

    def test_stale_header_starts_over(self, cache_root, tmp_path):
        ckpt = tmp_path / "study.jsonl"
        self._study(cache_root, ckpt, seed=0).run()
        other = self._study(cache_root, ckpt, seed=1).run()
        assert not any(e.from_checkpoint for e in other.evaluations)

    def test_corrupt_checkpoint_is_ignored(self, cache_root, tmp_path):
        ckpt = tmp_path / "study.jsonl"
        ckpt.write_text("not json\n")
        result = self._study(cache_root, ckpt).run()
        assert not any(e.from_checkpoint for e in result.evaluations)
        # The file was rebuilt with a valid header.
        header = json.loads(ckpt.read_text().splitlines()[0])
        assert header["type"] == "study"


class TestPointObjectives:
    @staticmethod
    def _result(metric, **kw):
        base = dict(
            spec_key="k", workload="w", metric=metric, duration_s=1.0,
            avg_power_mw=100.0, energy_mj=50.0,
        )
        base.update(kw)
        return RunResult(**base)

    def test_latency_and_fps_fold(self):
        results = [
            self._result("latency", latency_s=0.4),
            self._result("fps", avg_fps=50.0, energy_mj=30.0),
        ]
        perf, energy = point_objectives(results)
        assert perf == pytest.approx(0.4 + 1.0 / 50.0)
        assert energy == pytest.approx(80.0)

    def test_degenerate_fps_is_floored(self):
        perf, _ = point_objectives([self._result("fps", avg_fps=0.0)])
        assert perf == pytest.approx(10.0)  # 1 / _MIN_FPS
