"""Tests for the extended application suite."""

import pytest

from repro.core.study import CharacterizationStudy, run_app
from repro.platform.coretypes import CoreType
from repro.workloads.base import Metric
from repro.workloads.extended import EXTENDED_APP_NAMES, make_extended_app
from repro.workloads.mobile import MOBILE_APP_NAMES, make_app


class TestRegistry:
    def test_four_extended_apps(self):
        assert set(EXTENDED_APP_NAMES) == {
            "camera", "maps", "social-feed", "voice-call",
        }

    def test_no_name_collision_with_paper_suite(self):
        assert not set(EXTENDED_APP_NAMES) & set(MOBILE_APP_NAMES)

    def test_make_app_resolves_both_suites(self):
        assert make_app("camera").name == "camera"
        assert make_app("bbench").name == "bbench"

    def test_unknown_name_lists_both_suites(self):
        with pytest.raises(KeyError, match="voice-call"):
            make_app("minesweeper")

    def test_make_extended_rejects_paper_names(self):
        with pytest.raises(KeyError):
            make_extended_app("bbench")


class TestBehaviour:
    @pytest.fixture(scope="class")
    def study(self):
        return CharacterizationStudy(seed=7)

    def test_camera_holds_preview_rate(self, study):
        run = study.characterize("camera").run
        assert run.avg_fps() == pytest.approx(30.0, abs=2.0)

    def test_voice_call_is_tiny_core_material(self, study):
        c = study.characterize("voice-call")
        # Strictly periodic tiny loads: no big cores, min-state heavy.
        assert c.tlp.big_active_pct == 0.0
        assert c.efficiency.min_pct > 40.0
        assert c.run.avg_fps() == pytest.approx(50.0, abs=2.0)

    def test_maps_produces_actions(self, study):
        run = study.characterize("maps").run
        assert run.metric is Metric.LATENCY
        assert run.latency_s() > 0.5

    def test_social_feed_mostly_little(self, study):
        c = study.characterize("social-feed")
        assert c.tlp.big_active_pct < 10.0

    def test_camera_capture_bursts_exist(self):
        run = run_app("camera", seed=3)
        # JPEG capture bursts push at least brief big-core activity or
        # sustained little load; either way total CPU time is non-trivial.
        busy_s = float(run.trace.busy.sum()) * run.trace.tick_s
        assert busy_s > 2.0

    def test_extended_apps_work_on_reduced_configs(self):
        from repro.platform.chip import CoreConfig

        run = run_app("voice-call", seed=3, core_config=CoreConfig(1, 0),
                      max_seconds=4.0)
        assert run.avg_fps() == pytest.approx(50.0, abs=3.0)
        big = run.trace.cores_of_type(CoreType.BIG)
        assert run.trace.busy[big].sum() == 0.0
