"""Tests for the extension experiments and the efficiency scheduler."""

import pytest

from repro.core.study import run_app
from repro.platform.chip import exynos5422
from repro.platform.coretypes import CoreType, cortex_a7, cortex_a15
from repro.platform.perfmodel import WorkClass
from repro.sched.efficiency_sched import EfficiencyScheduler
from repro.sched.params import HMPParams
from repro.sim.core import SimCore
from repro.experiments.ext_governor_compare import run_governor_comparison
from repro.experiments.ext_thermal import run_thermal
from repro.experiments.ext_tiny_core import tiny_chip, tiny_core_spec


def make_cores():
    cores = []
    for i in range(2):
        cores.append(SimCore(i, cortex_a7(), True, 1_300_000))
    for i in range(2):
        cores.append(SimCore(2 + i, cortex_a15(), True, 1_900_000))
    return cores


class TestEfficiencyScheduler:
    def test_speedup_cache_uses_work_class(self):
        from repro.sched.load import LoadTracker
        from repro.sim.task import Task
        from repro.platform.perfmodel import COMPUTE_BOUND

        cores = make_cores()
        sched = EfficiencyScheduler(cores, HMPParams())

        def behavior(ctx):
            yield  # pragma: no cover

        cache_hungry = WorkClass("cache", compute_fraction=0.2, wss_kb=2000)
        t1 = Task("cpu", behavior, COMPUTE_BOUND)
        t2 = Task("mem", behavior, cache_hungry)
        for t in (t1, t2):
            t.load = LoadTracker(initial=500.0)
        # Cache-sensitive work gains more from the big core's 2MB L2.
        assert sched.big_speedup(t2) > sched.big_speedup(t1)

    def test_runs_end_to_end(self):
        run = run_app(
            "video-player",
            chip=exynos5422(screen_on=True),
            seed=1,
            max_seconds=3.0,
            scheduler_factory=EfficiencyScheduler,
        )
        assert run.avg_fps() > 25.0


class TestTinyCore:
    def test_tiny_spec_weaker_than_a7(self):
        tiny = tiny_core_spec()
        assert tiny.ipc_ratio < cortex_a7().ipc_ratio
        assert tiny.l2_kb < cortex_a7().l2_kb
        assert tiny.core_type is CoreType.LITTLE

    def test_tiny_chip_power_coefficients_reduced(self):
        chip = tiny_chip()
        base = exynos5422()
        tiny_params = chip.power_model.params.core[CoreType.LITTLE]
        base_params = base.power_model.params.core[CoreType.LITTLE]
        assert tiny_params.static_mw_per_v < base_params.static_mw_per_v
        assert tiny_params.dyn_mw_per_v2ghz < base_params.dyn_mw_per_v2ghz

    def test_tiny_chip_opp_floor(self):
        chip = tiny_chip()
        assert chip.little_cluster.opp_table.min_khz == 200_000
        assert chip.little_cluster.opp_table.max_khz == 800_000


class TestGovernorComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_governor_comparison(apps=["video-player"], seed=1)

    def test_all_governors_run(self, result):
        assert set(result.governors()) == {
            "performance", "interactive", "ondemand", "schedutil",
            "conservative", "powersave",
        }

    def test_power_ordering(self, result):
        power = {g: result.power_mw[g]["video-player"] for g in result.governors()}
        assert power["performance"] >= power["interactive"] - 1.0
        assert power["interactive"] >= power["powersave"] - 1.0

    def test_playback_holds_under_all(self, result):
        for gov in result.governors():
            assert result.performance[gov]["video-player"] > 25.0, gov


class TestThermalExtension:
    def test_sustained_run_throttles(self):
        result = run_thermal(total_units=12.0, seed=1)
        assert result.throttled_s > result.unthrottled_s
        assert result.throttle_events >= 1
        assert result.mean_big_khz_last_s < result.mean_big_khz_first_s
        assert result.peak_temp_c > 70.0
        assert "slowdown" in result.render()
