"""Tests for the additional governors (ondemand, conservative, powersave)."""

import pytest

from repro.platform.coretypes import CoreType, cortex_a7
from repro.platform.opp import little_opp_table
from repro.sched.governor import (
    ClusterFreqDomain,
    ConservativeGovernor,
    OndemandGovernor,
    PowersaveGovernor,
)
from repro.sim.core import SimCore

TICK_S = 0.001


def make_domain(n_cores=1):
    table = little_opp_table()
    cores = [
        SimCore(i, cortex_a7(), enabled=True, max_freq_khz=table.max_khz)
        for i in range(n_cores)
    ]
    return ClusterFreqDomain(CoreType.LITTLE, table, cores), cores


def feed(gov, domain, cores, busy, ticks):
    for t in range(ticks):
        cores[0].busy_in_window_s += busy * TICK_S
        gov.tick(domain, t, TICK_S)


class TestPowersave:
    def test_pins_min(self):
        domain, cores = make_domain()
        gov = PowersaveGovernor()
        gov.start(domain)
        domain.set_freq(domain.opp_table.min_khz)
        gov.tick(domain, 0, TICK_S)
        assert domain.freq_khz == domain.opp_table.min_khz


class TestOndemand:
    def test_jumps_to_max_on_load(self):
        domain, cores = make_domain()
        gov = OndemandGovernor(sampling_ms=20)
        gov.start(domain)
        feed(gov, domain, cores, 1.0, 20)
        assert domain.freq_khz == domain.opp_table.max_khz

    def test_steps_down_on_low_load(self):
        domain, cores = make_domain()
        gov = OndemandGovernor(sampling_ms=20)
        gov.start(domain)
        domain.set_freq(domain.opp_table.max_khz)
        feed(gov, domain, cores, 0.1, 20)
        assert domain.freq_khz < domain.opp_table.max_khz

    def test_never_raises_without_jump(self):
        domain, cores = make_domain()
        gov = OndemandGovernor(sampling_ms=20, up_threshold=0.8)
        gov.start(domain)
        domain.set_freq(800_000)
        feed(gov, domain, cores, 0.5, 20)  # below up threshold
        assert domain.freq_khz <= 800_000

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OndemandGovernor(sampling_ms=0)
        with pytest.raises(ValueError):
            OndemandGovernor(up_threshold=1.5)


class TestConservative:
    def test_single_step_up(self):
        domain, cores = make_domain()
        gov = ConservativeGovernor(sampling_ms=20)
        gov.start(domain)
        feed(gov, domain, cores, 1.0, 20)
        assert domain.freq_khz == 600_000  # exactly one OPP above min

    def test_single_step_down(self):
        domain, cores = make_domain()
        gov = ConservativeGovernor(sampling_ms=20)
        gov.start(domain)
        domain.set_freq(1_000_000)
        feed(gov, domain, cores, 0.05, 20)
        assert domain.freq_khz == 900_000

    def test_holds_in_band(self):
        domain, cores = make_domain()
        gov = ConservativeGovernor(sampling_ms=20)
        gov.start(domain)
        domain.set_freq(1_000_000)
        feed(gov, domain, cores, 0.5, 20)
        assert domain.freq_khz == 1_000_000

    def test_ramp_takes_many_samples(self):
        domain, cores = make_domain()
        gov = ConservativeGovernor(sampling_ms=20)
        gov.start(domain)
        feed(gov, domain, cores, 1.0, 20 * 8)  # 8 samples for 8 steps
        assert domain.freq_khz == domain.opp_table.max_khz

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            ConservativeGovernor(up_threshold=0.3, down_threshold=0.5)


class TestThermalCap:
    def test_cap_clamps_current_and_future_freq(self):
        domain, cores = make_domain()
        domain.set_freq(1_300_000)
        domain.set_cap(800_000)
        assert domain.freq_khz == 800_000
        domain.set_freq(1_300_000)  # governor asks for max
        assert domain.freq_khz == 800_000

    def test_cap_release(self):
        domain, cores = make_domain()
        domain.set_cap(800_000)
        domain.set_cap(1_300_000)
        domain.set_freq(1_300_000)
        assert domain.freq_khz == 1_300_000

    def test_cap_must_be_opp(self):
        domain, cores = make_domain()
        with pytest.raises(ValueError):
            domain.set_cap(850_000)
