"""Tests for the GPU model and its pipeline integration."""

import pytest

from repro.platform.gpu import GpuPowerParams, GpuSpec, mali_opp_table
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.sim.engine import SimConfig, Simulator
from repro.sim.gpu import GpuDevice
from repro.sim.task import Task, WaitSignal, Work
from repro.workloads.base import App, FramePipelineSpec, Metric


class TestGpuSpec:
    def test_throughput_scales_with_frequency(self):
        spec = GpuSpec()
        assert spec.throughput_units_per_sec(spec.opp_table.max_khz) == 1.0
        half = spec.throughput_units_per_sec(spec.opp_table.max_khz // 2)
        assert half == pytest.approx(0.5, abs=0.01)

    def test_power_monotone_in_busy(self):
        spec = GpuSpec()
        f = spec.opp_table.max_khz
        assert spec.power_mw(f, 1.0) > spec.power_mw(f, 0.5) > spec.power_mw(f, 0.0)

    def test_power_rejects_bad_busy(self):
        with pytest.raises(ValueError):
            GpuSpec().power_mw(600_000, 1.5)

    def test_power_params_validation(self):
        with pytest.raises(ValueError):
            GpuPowerParams(static_mw_per_v=-1)

    def test_mali_opp_range(self):
        table = mali_opp_table()
        assert table.min_khz == 177_000
        assert table.max_khz <= 600_000


class TestGpuDevice:
    def make(self):
        device = GpuDevice(GpuSpec())
        device.freq_khz = device.spec.opp_table.max_khz
        return device

    def test_job_completion_posts_channel(self):
        device = self.make()
        from repro.sim.task import Channel

        done = Channel("done")
        device.submit(0.0005, done)  # half a tick at max clock
        device.tick(0.001)
        assert done.permits == 1
        assert device.jobs_completed == 1
        assert device.queue_depth == 0

    def test_long_job_spans_ticks(self):
        device = self.make()
        from repro.sim.task import Channel

        done = Channel("done")
        device.submit(0.0035, done)
        for _ in range(3):
            device.tick(0.001)
        assert done.permits == 0
        device.tick(0.001)
        assert done.permits == 1

    def test_fifo_order(self):
        device = self.make()
        from repro.sim.task import Channel

        first, second = Channel("a"), Channel("b")
        device.submit(0.0008, first)
        device.submit(0.0008, second)
        device.tick(0.001)
        assert first.permits == 1 and second.permits == 0

    def test_rejects_empty_job(self):
        from repro.sim.task import Channel

        with pytest.raises(ValueError):
            self.make().submit(0.0, Channel("x"))

    def test_governor_ramps_under_load(self):
        device = GpuDevice(GpuSpec())
        from repro.sim.task import Channel

        start = device.freq_khz
        for _ in range(200):
            if device.queue_depth == 0:
                device.submit(0.01, Channel("sink"))
            device.tick(0.001)
        assert device.freq_khz > start

    def test_energy_accumulates(self):
        device = self.make()
        for _ in range(10):
            device.tick(0.001)
        assert device.energy_mj > 0  # idle leakage still counts


class TestEngineIntegration:
    def test_no_gpu_by_default(self):
        sim = Simulator(SimConfig(max_seconds=0.1))
        assert sim.gpu is None

    def test_task_can_wait_on_gpu_job(self):
        sim = Simulator(SimConfig(gpu=GpuSpec(), max_seconds=3.0))
        done_at = []

        def behavior(ctx):
            chan = sim.channel("gpu-done")
            yield Work(0.001)
            sim.gpu.submit(0.02, chan)
            yield WaitSignal(chan)
            done_at.append(ctx.now_s)
            ctx.request_stop()

        sim.spawn(Task("t", behavior, COMPUTE_BOUND))
        sim.run()
        assert done_at and done_at[0] > 0.02  # GPU below max clock at first

    def test_gpu_power_in_system_total(self):
        def run(with_gpu):
            sim = Simulator(SimConfig(
                gpu=GpuSpec() if with_gpu else None, max_seconds=0.5, seed=1
            ))
            return sim.run().average_power_mw()

        assert run(True) > run(False)

    def test_frame_pipeline_gpu_bound(self):
        class Game(App):
            def __init__(self, gpu_units):
                super().__init__("g", Metric.FPS, COMPUTE_BOUND,
                                 ambient_ui_duty=0, ambient_bg_interval_ms=0)
                self.gpu_units = gpu_units

            def build(self, sim):
                self.add_frame_pipeline(sim, FramePipelineSpec(
                    logic_units=0.001, render_units=0.001,
                    units_sigma=0.1, gpu_units=self.gpu_units))

        def fps(gpu_units):
            sim = Simulator(SimConfig(gpu=GpuSpec(), max_seconds=6.0, seed=2))
            app = Game(gpu_units)
            app.install(sim)
            sim.run()
            return app.avg_fps()

        # 40 ms of max-clock GPU work per frame cannot hit 60 fps.
        assert fps(0.040) < 30.0
        assert fps(0.002) > fps(0.040) + 15.0
