"""Tests for idle-behaviour analysis and the energy-frequency extension."""

import numpy as np
import pytest

from repro.core.idleness import idle_period_lengths_ms, idleness_profile
from repro.core.study import run_app
from repro.platform.coretypes import CoreType
from repro.sim.trace import Trace
from repro.experiments.ext_energy_freq import run_energy_frequency_sweep

TYPES = [CoreType.LITTLE] * 2 + [CoreType.BIG] * 2


def trace_from_busy(pattern, wakeups=None):
    trace = Trace(TYPES, [True] * 4, max_ticks=len(pattern))
    for i, level in enumerate(pattern):
        w = wakeups[i] if wakeups else 0
        trace.record([level, 0, 0, 0], 500_000, 800_000, 400.0, wakeups=w)
    trace.finalize()
    return trace


class TestIdlePeriods:
    def test_detects_runs(self):
        pattern = [1, 0, 0, 0, 1, 1, 0, 0]  # idle runs: 3 and 2 ticks
        lengths = idle_period_lengths_ms(trace_from_busy(pattern))
        assert sorted(lengths.tolist()) == [2.0, 3.0]

    def test_all_busy(self):
        assert idle_period_lengths_ms(trace_from_busy([1] * 5)).size == 0

    def test_all_idle_single_period(self):
        lengths = idle_period_lengths_ms(trace_from_busy([0] * 7))
        assert lengths.tolist() == [7.0]

    def test_profile_fields(self):
        pattern = [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1]
        trace = trace_from_busy(pattern, wakeups=[0] * 15 + [3])
        profile = idleness_profile(trace, deep_entry_ms=10.0)
        assert profile.idle_periods == 2
        assert profile.idle_fraction == pytest.approx(13 / 16)
        # The 11-tick period qualifies for deep idle; the 2-tick one not.
        assert profile.deep_idle_share == pytest.approx(11 / 13)
        assert profile.wakeups_per_second == pytest.approx(3 / 0.016)

    def test_wakeup_rate_from_real_run(self):
        run = run_app("video-player", seed=2, max_seconds=4.0)
        profile = idleness_profile(run.trace.trimmed(1.0))
        # The 30fps pipeline + audio + decoder wake at tens of Hz.
        assert 50.0 < profile.wakeups_per_second < 1000.0
        assert "wakeups/s" in profile.render()

    def test_empty_trace(self):
        trace = Trace(TYPES, [True] * 4, max_ticks=1)
        trace.finalize()
        profile = idleness_profile(trace)
        assert profile.idle_periods == 0
        assert profile.wakeups_per_second == 0.0


class TestEnergyFrequencySweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_energy_frequency_sweep(total_units=1.0, seed=2)

    def test_covers_all_opps(self, result):
        assert len(result.energy_mj[CoreType.LITTLE]) == 9
        assert len(result.energy_mj[CoreType.BIG]) == 12

    def test_elapsed_decreases_with_frequency(self, result):
        for core_type in (CoreType.LITTLE, CoreType.BIG):
            table = result.elapsed_s[core_type]
            ordered = [table[f] for f in sorted(table)]
            assert all(b <= a + 1e-9 for a, b in zip(ordered, ordered[1:]))

    def test_big_energy_curve_is_u_shaped(self, result):
        """Dynamic power eventually overtakes race-to-idle savings."""
        table = result.energy_mj[CoreType.BIG]
        freqs = sorted(table)
        optimum = result.optimal_khz(CoreType.BIG)
        assert freqs[0] < optimum < freqs[-1]
        assert table[freqs[0]] > table[optimum]
        assert table[freqs[-1]] > table[optimum]

    def test_little_beats_big_on_energy(self, result):
        """The energy-efficiency premise of the little cores."""
        best_little = min(result.energy_mj[CoreType.LITTLE].values())
        best_big = min(result.energy_mj[CoreType.BIG].values())
        assert best_little < best_big

    def test_render(self, result):
        assert "optimum" in result.render()
