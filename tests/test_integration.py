"""Cross-module integration tests: whole-system behaviours from the paper."""

import pytest

from repro.core.study import CharacterizationStudy, run_app
from repro.platform.chip import CoreConfig, exynos5422
from repro.platform.coretypes import CoreType
from repro.sched.params import SchedulerConfig, baseline_config, variant_configs
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, Work
from repro.platform.perfmodel import COMPUTE_BOUND


@pytest.fixture(scope="module")
def study():
    return CharacterizationStudy(seed=7)


class TestPaperHeadlines:
    """The paper's main qualitative findings, end-to-end."""

    def test_tlp_low_for_mobile_apps(self, study):
        """Section V.A: all apps except bbench have TLP below ~3."""
        for app in ["photo-editor", "video-player", "youtube", "browser"]:
            assert study.characterize(app).tlp.tlp < 3.0

    def test_bbench_has_highest_tlp(self, study):
        bbench = study.characterize("bbench").tlp.tlp
        for app in ["photo-editor", "video-player", "browser", "encoder"]:
            assert bbench > study.characterize(app).tlp.tlp

    def test_big_core_usage_ordering(self, study):
        """Encoder/bbench use big cores heavily; media apps basically never."""
        big = {
            app: study.characterize(app).tlp.big_active_pct
            for app in ["encoder", "bbench", "video-player", "youtube"]
        }
        assert big["encoder"] > 30.0
        assert big["bbench"] > 25.0
        assert big["video-player"] < 3.0
        assert big["youtube"] < 3.0

    def test_majority_of_time_in_min_or_under50(self, study):
        """Section VI.B: min + <50% dominate for most apps."""
        dominated = 0
        apps = ["photo-editor", "video-player", "youtube", "browser", "pdf-reader"]
        for app in apps:
            b = study.characterize(app).efficiency
            if b.min_pct + b.under_50_pct > 50.0:
                dominated += 1
        assert dominated >= 4

    def test_big_cores_rarely_more_than_one(self, study):
        """Section V.B: even when big cores are used, usually just one."""
        for app in ["encoder", "virus-scanner", "eternity-warrior-2"]:
            matrix = study.characterize(app).matrix
            one_big = matrix[1].sum()
            multi_big = matrix[2:].sum()
            assert one_big > multi_big

    def test_single_big_core_recovers_performance(self):
        """Section V.C: one big core fixes most of the latency loss."""
        app = "bbench"
        base = run_app(app, core_config=CoreConfig(4, 4), seed=0).latency_s()
        l4 = run_app(app, core_config=CoreConfig(4, 0), seed=0).latency_s()
        l4b1 = run_app(app, core_config=CoreConfig(4, 1), seed=0).latency_s()
        loss_l4 = l4 - base
        loss_l4b1 = l4b1 - base
        assert loss_l4 > 0
        assert loss_l4b1 < 0.5 * loss_l4

    def test_little_only_saves_power(self):
        app = "video-player"
        base = run_app(app, core_config=CoreConfig(4, 4), seed=0)
        l2 = run_app(app, core_config=CoreConfig(2, 0), seed=0)
        assert l2.avg_power_mw() < base.avg_power_mw()
        # ...without hurting playback (paper: angry bird / video player).
        assert l2.avg_fps() > base.avg_fps() - 2.0

    def test_longer_governor_interval_saves_power(self):
        """Section VI.C: the sampling interval is the most impactful knob."""
        app = "bbench"
        variants = {v.name: v for v in variant_configs()}
        base = run_app(app, scheduler=baseline_config(), seed=0)
        slow = run_app(app, scheduler=variants["interval-100"], seed=0)
        assert slow.avg_power_mw() < base.avg_power_mw()

    def test_aggressive_hmp_costs_power(self):
        app = "eternity-warrior-2"
        variants = {v.name: v for v in variant_configs()}
        base = run_app(app, scheduler=baseline_config(), seed=0)
        aggressive = run_app(app, scheduler=variants["hmp-aggressive"], seed=0)
        conservative = run_app(app, scheduler=variants["hmp-conservative"], seed=0)
        assert aggressive.avg_power_mw() >= conservative.avg_power_mw()


class TestSchedulerGovernorInterplay:
    def test_burst_ramps_frequency_then_migrates(self):
        """The canonical interactive burst: freq ramp, then up-migration."""
        sim = Simulator(SimConfig(max_seconds=2.0, seed=0))

        def burst(ctx):
            yield Sleep(0.2)
            yield Work(1.0)  # a long burst
            ctx.request_stop()

        task = Task("burst", burst, COMPUTE_BOUND)
        sim.spawn(task)
        trace = sim.run()
        little_freq = trace.freq_khz(CoreType.LITTLE)
        big_rows = trace.cores_of_type(CoreType.BIG)
        # The little cluster ramped beyond min during the burst...
        assert little_freq.max() > 500_000
        # ...and the task eventually migrated to a big core.
        assert trace.busy[big_rows].sum() > 0
        assert task.migrations >= 1

    def test_weight_variants_change_migration_timing(self):
        """Longer history half-life delays the up-migration."""
        variants = {v.name: v for v in variant_configs()}

        def first_big_tick(sched: SchedulerConfig) -> int:
            sim = Simulator(SimConfig(max_seconds=3.0, seed=0, scheduler=sched))

            def burst(ctx):
                yield Work(3.0)

            sim.spawn(Task("burst", burst, COMPUTE_BOUND))
            trace = sim.run()
            big_rows = trace.cores_of_type(CoreType.BIG)
            big_busy = trace.busy[big_rows].sum(axis=0)
            hits = (big_busy > 0).nonzero()[0]
            return int(hits[0]) if len(hits) else 10_000

        fast = first_big_tick(variants["weight-half"])
        slow = first_big_tick(variants["weight-2x"])
        assert fast < slow


class TestEnergyAccounting:
    def test_b4_uses_more_power_than_l4_for_same_app(self):
        chip = exynos5422(screen_on=True)
        l4 = run_app("fifa-15", chip=chip, core_config=CoreConfig(4, 0), seed=0)
        b4 = run_app("fifa-15", chip=chip, core_config=CoreConfig(0, 4), seed=0)
        assert b4.avg_power_mw() > l4.avg_power_mw()

    def test_power_increase_moderate_with_screen_on(self):
        """Figure 4 shape: screen-on power dilutes the CPU delta."""
        chip = exynos5422(screen_on=True)
        l4 = run_app("pdf-reader", chip=chip, core_config=CoreConfig(4, 0), seed=0)
        b4 = run_app("pdf-reader", chip=chip, core_config=CoreConfig(0, 4), seed=0)
        increase = (b4.avg_power_mw() - l4.avg_power_mw()) / l4.avg_power_mw()
        assert increase < 0.6
