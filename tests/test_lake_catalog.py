"""The trace lake: catalog indexing, queries, version diffing, history.

Covers the full ``repro.lake`` surface on a real (small) cache:
incremental ``store()``-time indexing vs full rebuild, the append-only
fold semantics (evict, last-write-wins, garbage tolerance, merge),
``LakeQuery`` filters/group-bys/aggregates, ``diff_versions`` across two
versions' entries for the same logical specs, the bench history
dashboard, and the ``biglittle lake`` / ``biglittle cache --stats`` CLI.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

import repro
from repro.cli import main
from repro.lake import (
    CATALOG_SCHEMA_VERSION,
    Catalog,
    LakeQuery,
    ingest_bench,
    load_history,
    render_report,
)
from repro.lake.regress import diff_versions, render_diff
from repro.obs.metrics import global_metrics, reset_global_metrics
from repro.runner import BatchRunner, ResultCache, RunSpec, execute_spec

APPS = ("bbench", "video-player")
SEEDS = (0, 1)


def _specs(trace_policy: str = "rle") -> list[RunSpec]:
    return [
        RunSpec(app, seed=seed, max_seconds=1.0, trace_policy=trace_policy)
        for app in APPS
        for seed in SEEDS
    ]


@pytest.fixture(scope="module")
def lake_root(tmp_path_factory):
    """A cache populated with 4 short RLE runs + 1 traceless run."""
    root = str(tmp_path_factory.mktemp("lake"))
    cache = ResultCache(root=root)
    specs = _specs() + [
        RunSpec("browser", seed=9, max_seconds=1.0, trace_policy="none")
    ]
    report = BatchRunner(workers=1, cache=cache).run(specs)
    report.raise_on_failure()
    return root


class TestCatalog:
    def test_store_indexes_incrementally(self, lake_root):
        catalog = Catalog(root=lake_root)
        assert catalog.exists()
        entries = catalog.entries()
        assert len(entries) == 5
        assert {e.workload for e in entries} == {"bbench", "video-player", "browser"}
        assert all(e.version == repro.__version__ for e in entries)

    def test_entry_dimensions(self, lake_root):
        entry = next(
            e for e in Catalog(root=lake_root).entries()
            if e.workload == "bbench" and e.seed == 0
        )
        assert entry.trace_policy == "rle"
        assert entry.trace_format == "rle"
        assert entry.scheduler == "baseline"
        assert entry.dim("gov.hold_ms") == 80
        assert entry.dim("metrics.avg_power_mw") == entry.metrics["avg_power_mw"]
        assert entry.nbytes > 0
        with pytest.raises(KeyError):
            entry.dim("not-a-dimension")

    def test_rebuild_matches_incremental(self, lake_root):
        catalog = Catalog(root=lake_root)
        incremental = [e.to_record() for e in catalog.entries()]
        rebuilt = [e.to_record() for e in catalog.rebuild()]
        assert rebuilt == incremental

    def test_traceless_entry_has_no_format(self, lake_root):
        entry = next(
            e for e in Catalog(root=lake_root).entries() if e.workload == "browser"
        )
        assert entry.trace_policy == "none"
        assert entry.trace_format is None

    def test_evict_appends_and_folds_away(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = _specs()[0]
        cache.store(spec, execute_spec(spec))
        catalog = Catalog(root=str(tmp_path))
        assert len(catalog.entries()) == 1
        cache.evict(spec)
        assert catalog.entries() == []
        # Two lines in the log (store + evict), folded on read.
        with open(catalog.path) as fh:
            assert len(fh.readlines()) == 2

    def test_garbage_and_newer_schema_lines_are_skipped(self, lake_root):
        catalog = Catalog(root=lake_root)
        n = len(catalog.entries())
        with open(catalog.path, "a") as fh:
            fh.write("this is not json\n")
            fh.write(json.dumps({
                "schema": CATALOG_SCHEMA_VERSION + 1, "op": "store",
                "version": "9.9.9", "spec_key": "future", "entry": {},
            }) + "\n")
        reset_global_metrics()
        assert len(catalog.entries()) == n
        assert global_metrics().counter("lake.catalog.skipped_lines").value == 2
        catalog.rebuild()  # compaction drops the garbage
        assert len(catalog.entries()) == n

    def test_merge_from_other_catalog(self, lake_root, tmp_path):
        other_cache = ResultCache(root=str(tmp_path))
        spec = RunSpec("browser", seed=42, max_seconds=1.0, trace_policy="none")
        other_cache.store(spec, execute_spec(spec))
        catalog = Catalog(root=lake_root)
        before = len(catalog.entries())
        appended = catalog.merge_from(os.path.join(str(tmp_path), "catalog.jsonl"))
        assert appended == 1
        merged = catalog.entries()
        assert len(merged) == before + 1
        assert any(e.seed == 42 for e in merged)
        catalog.rebuild()  # restore: merged entry has no local files

    def test_breakdown(self, lake_root):
        breakdown = Catalog(root=lake_root).breakdown()
        per_app = breakdown[repro.__version__]
        assert per_app["bbench"]["entries"] == 2
        assert per_app["video-player"]["entries"] == 2
        assert per_app["bbench"]["bytes"] > 0

    def test_scan_without_log(self, lake_root, tmp_path):
        catalog = Catalog(root=lake_root, path=str(tmp_path / "absent.jsonl"))
        assert not catalog.exists()
        assert len(catalog.load()) == 5  # falls back to tree scan


class TestLakeQuery:
    def test_where_and_count(self, lake_root):
        result = (
            LakeQuery(Catalog(root=lake_root))
            .where(workload="bbench")
            .agg("count")
            .run()
        )
        assert result.rows == [{"count": 2}]

    def test_where_matches_numbers_as_strings(self, lake_root):
        q = LakeQuery(Catalog(root=lake_root))
        assert q.where(seed="0").agg("count").run().rows[0]["count"] == \
            q.where(seed=0).agg("count").run().rows[0]["count"]

    def test_group_by_scalar_aggs(self, lake_root):
        result = (
            LakeQuery(Catalog(root=lake_root))
            .where(trace_policy="rle")
            .group_by("workload")
            .agg("count", "mean:avg_power_mw", "max:energy_mj")
            .run()
        )
        assert [r["workload"] for r in result.rows] == ["bbench", "video-player"]
        for row in result.rows:
            assert row["count"] == 2
            assert row["mean:avg_power_mw"] > 0
            assert row["max:energy_mj"] > 0

    def test_kernel_aggs_without_materialization(self, lake_root):
        reset_global_metrics()
        result = (
            LakeQuery(Catalog(root=lake_root))
            .group_by("workload")
            .agg("residency:little", "freq_hist:big", "migrations", "energy")
            .run()
        )
        assert global_metrics().counter("trace.materializations").value == 0
        assert result.skipped_no_trace == 1  # the trace_policy="none" run
        bbench = next(r for r in result.rows if r["workload"] == "bbench")
        assert bbench["energy"]["system_mj"] > 0
        assert bbench["migrations"]["total"] >= 0
        assert sum(bbench["residency:little"].values()) == pytest.approx(100.0)

    def test_group_residency_weights_by_active_ticks(self, lake_root):
        # The group percentage must equal recombining the per-entry
        # counts, not averaging per-entry percentages.
        from repro.lake.kernels import residency_counts
        from repro.lake.query import _entry_rle
        from repro.platform.coretypes import CoreType

        catalog = Catalog(root=lake_root)
        entries = [e for e in catalog.entries() if e.workload == "bbench"]
        counts: dict[int, int] = {}
        total = 0
        for entry in entries:
            c, n = residency_counts(_entry_rle(entry, lake_root), CoreType.LITTLE)
            for khz, ticks in c.items():
                counts[khz] = counts.get(khz, 0) + ticks
            total += n
        expected = {str(k): 100.0 * v / total for k, v in sorted(counts.items())}
        result = (
            LakeQuery(catalog)
            .where(workload="bbench")
            .agg("residency:little")
            .run()
        )
        assert result.rows[0]["residency:little"] == expected

    def test_builder_is_immutable(self, lake_root):
        base = LakeQuery(Catalog(root=lake_root))
        filtered = base.where(workload="bbench")
        assert base.run().rows[0]["count"] == 5
        assert filtered.run().rows[0]["count"] == 2

    def test_unknown_agg_rejected(self, lake_root):
        with pytest.raises(ValueError, match="unknown aggregate"):
            LakeQuery(Catalog(root=lake_root)).agg("median:energy_mj")

    def test_render_and_json(self, lake_root):
        result = (
            LakeQuery(Catalog(root=lake_root))
            .group_by("workload")
            .agg("count")
            .run()
        )
        text = result.render(title="t")
        assert "bbench" in text and "count" in text
        payload = json.loads(result.to_json())
        assert payload["group_by"] == ["workload"]
        assert len(payload["rows"]) == 3


class TestDiffVersions:
    @pytest.fixture()
    def two_version_root(self, tmp_path):
        root = str(tmp_path)
        spec = RunSpec("video-player", seed=3, max_seconds=1.0, trace_policy="rle")
        result = execute_spec(spec)
        ResultCache(root=root, version="1.0.0").store(spec, result)
        # Version B: same logical spec, perturbed power metric.
        changed = dataclasses.replace(
            result, avg_power_mw=result.avg_power_mw * 1.25
        )
        ResultCache(root=root, version="2.0.0").store(spec, changed)
        # And one spec only present in B.
        only_b = RunSpec("bbench", seed=5, max_seconds=1.0, trace_policy="none")
        ResultCache(root=root, version="2.0.0").store(only_b, execute_spec(only_b))
        return root

    def test_diff_finds_changed_metric(self, two_version_root):
        payload = diff_versions(
            Catalog(root=two_version_root), "1.0.0", "2.0.0"
        )
        assert payload["common_specs"] == 1
        assert len(payload["changed"]) == 1
        delta = payload["changed"][0]["metrics"]["avg_power_mw"]
        assert delta["rel"] == pytest.approx(0.2)  # 1.25x = +20% of max side
        assert payload["only_in_b"] == [
            {"spec_key": payload["only_in_b"][0]["spec_key"], "workload": "bbench"}
        ]
        assert payload["only_in_a"] == []
        text = render_diff(payload)
        assert "avg_power_mw" in text and "1.0.0 -> 2.0.0" in text

    def test_identical_versions_diff_clean(self, two_version_root):
        spec = RunSpec("video-player", seed=3, max_seconds=1.0, trace_policy="rle")
        result = ResultCache(root=two_version_root, version="1.0.0").load(spec)
        ResultCache(root=two_version_root, version="3.0.0").store(spec, result)
        payload = diff_versions(
            Catalog(root=two_version_root), "1.0.0", "3.0.0"
        )
        assert payload["common_specs"] == 1
        assert payload["changed"] == []
        assert payload["unchanged"] == 1


class TestBenchHistory:
    BENCH = {
        "quick": True,
        "seed": 1,
        "scenarios": [
            {"scenario": "standby-1hz", "speedup": 40.0,
             "fastpath": {"ticks_per_sec": 1.0e6}},
            {"scenario": "browser", "speedup": 2.5,
             "fastpath": {"ticks_per_sec": 60_000.0}},
        ],
        "sweep_lockstep": {"speedup": 4.5, "scalar_mismatches": 0},
        "batch_transport": {"policies": {
            "rle": {"speedup_vs_full": 2.4, "bytes_reduction_vs_full": 1200.0},
        }},
        "lake_query": {"entries": 200, "catalog_build_s": 0.02,
                       "queries_per_sec": 4.0, "materializations": 0},
    }

    def test_ingest_dedup_and_report(self, tmp_path):
        bench_path = str(tmp_path / "bench.json")
        history_path = str(tmp_path / "hist.jsonl")
        with open(bench_path, "w") as fh:
            json.dump(self.BENCH, fh)
        record = ingest_bench(bench_path, history_path, label="pr8")
        assert record is not None and record["label"] == "pr8"
        assert ingest_bench(bench_path, history_path) is None  # same fingerprint
        assert len(load_history(history_path)) == 1

        faster = dict(self.BENCH)
        faster["scenarios"] = [
            {"scenario": "standby-1hz", "speedup": 50.0,
             "fastpath": {"ticks_per_sec": 1.3e6}},
            {"scenario": "browser", "speedup": 2.6,
             "fastpath": {"ticks_per_sec": 66_000.0}},
        ]
        with open(bench_path, "w") as fh:
            json.dump(faster, fh)
        assert ingest_bench(bench_path, history_path, label="pr9") is not None

        text = render_report(history_path)
        assert "2 snapshots" in text
        assert "pr8 -> pr9" in text
        assert "standby-1hz" in text
        assert "+30.0%" in text  # 1.0e6 -> 1.3e6 ticks/s
        assert "0 densifications" in text

    def test_empty_history_renders_hint(self, tmp_path):
        assert "no bench history" in render_report(str(tmp_path / "none.jsonl"))


class TestLakeCLI:
    def test_lake_index_and_query(self, lake_root, capsys):
        assert main(["lake", "index", "--cache-dir", lake_root]) == 0
        assert "5 entries" in capsys.readouterr().out
        rc = main([
            "lake", "query", "--cache-dir", lake_root,
            "--where", "workload=bbench", "--group-by", "seed",
            "--agg", "count,migrations",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "migrations" in out and "up:" in out

    def test_lake_query_json_artifact(self, lake_root, capsys, tmp_path):
        out_path = str(tmp_path / "q.json")
        rc = main([
            "lake", "query", "--cache-dir", lake_root,
            "--group-by", "workload", "--agg", "count", "--json", out_path,
        ])
        assert rc == 0
        capsys.readouterr()
        payload = json.load(open(out_path))
        assert {r["workload"] for r in payload["rows"]} == {
            "bbench", "video-player", "browser",
        }

    def test_lake_report_ingest(self, tmp_path, capsys):
        bench_path = str(tmp_path / "bench.json")
        with open(bench_path, "w") as fh:
            json.dump(TestBenchHistory.BENCH, fh)
        history = str(tmp_path / "hist.jsonl")
        rc = main([
            "lake", "report", "--history", history,
            "--ingest", bench_path, "--label", "smoke",
        ])
        assert rc == 0
        assert "1 snapshots" in capsys.readouterr().out

    def test_cache_stats_breakdown(self, lake_root, capsys):
        rc = main(["cache", "--stats", "--cache-dir", lake_root])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Per-app breakdown" in out
        assert "bbench" in out and "video-player" in out

    def test_lake_diff_cli_exit_code(self, lake_root, capsys):
        # No common specs between a made-up version pair -> exit 1.
        rc = main(["lake", "diff", "0.0.1", "0.0.2", "--cache-dir", lake_root])
        assert rc == 1
