"""Golden tests: every RLE-native lake kernel equals dense recompute.

The lake's correctness claim is *bit*-equality, not approximate
equality: each kernel's result must be identical (``==``, no tolerance)
to recomputing the same statistic on the inflated dense trace.  Checked
on real app traces (the distributions the paper cares about) and on
hypothesis-generated synthetic traces (adversarial run structure), plus
the no-densification guarantee via the ``trace.materializations``
counter.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.residency import frequency_residency
from repro.lake.kernels import (
    cluster_energy,
    dense_cluster_energy,
    dense_freq_histogram,
    dense_migrations,
    freq_histogram,
    merge_segments,
    migrations,
    residency,
)
from repro.obs.metrics import global_metrics, reset_global_metrics
from repro.platform.chip import exynos5422
from repro.platform.coretypes import CoreType
from repro.sim.engine import SimConfig, Simulator
from repro.sim.trace import Trace
from repro.sim.traceio import RLETrace
from repro.workloads.mobile import make_app

APPS = ("bbench", "video-player", "browser")


@pytest.fixture(scope="module")
def app_rles():
    """Short real app runs, as (rle, dense) pairs keyed by app name."""
    pairs = {}
    for app in APPS:
        sim = Simulator(SimConfig(
            chip=exynos5422(screen_on=True), max_seconds=4.0, seed=0
        ))
        make_app(app).install(sim)
        trace = sim.run()
        rle = RLETrace.from_trace(trace)
        pairs[app] = (rle, rle.to_trace())
    return pairs


class TestGoldenOnAppTraces:
    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("core_type", [CoreType.LITTLE, CoreType.BIG])
    def test_residency_bit_equal(self, app_rles, app, core_type):
        rle, dense = app_rles[app]
        assert residency(rle, core_type) == frequency_residency(dense, core_type)

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("core_type", [CoreType.LITTLE, CoreType.BIG])
    def test_freq_histogram_bit_equal(self, app_rles, app, core_type):
        rle, dense = app_rles[app]
        assert freq_histogram(rle, core_type) == dense_freq_histogram(
            dense, core_type
        )

    @pytest.mark.parametrize("app", APPS)
    def test_migrations_bit_equal(self, app_rles, app):
        rle, dense = app_rles[app]
        assert migrations(rle) == dense_migrations(dense)

    @pytest.mark.parametrize("app", APPS)
    def test_energy_bit_equal(self, app_rles, app):
        rle, dense = app_rles[app]
        assert cluster_energy(rle) == dense_cluster_energy(dense)

    def test_energy_matches_trace_energy_to_float32(self, app_rles):
        # Trace.energy_mj sums in float32, the kernel in exact float64 —
        # they must agree to float32 precision, not bit-exactly.
        rle, dense = app_rles["bbench"]
        assert cluster_energy(rle)["system_mj"] == pytest.approx(
            dense.energy_mj(), rel=1e-5
        )

    def test_kernels_never_materialize(self, app_rles):
        reset_global_metrics()
        for app in APPS:
            rle, _ = app_rles[app]
            for core_type in (CoreType.LITTLE, CoreType.BIG):
                residency(rle, core_type)
                freq_histogram(rle, core_type)
            migrations(rle)
            cluster_energy(rle)
        snap = global_metrics().snapshot()
        assert snap.counters.get("trace.materializations", 0) == 0
        assert snap.counters.get("lake.kernel_runs", 0) > 0


# -- hypothesis: synthetic traces with adversarial run structure -------------


def _make_trace(busy, freq_l, freq_b, power, cpu_l, cpu_b, wakeups) -> Trace:
    n = busy.shape[1]
    trace = Trace(
        [CoreType.LITTLE, CoreType.LITTLE, CoreType.BIG, CoreType.BIG],
        [True] * 4,
        max_ticks=max(1, n),
    )
    trace._busy[:, :n] = busy
    trace._freq[0, :n] = freq_l
    trace._freq[1, :n] = freq_b
    trace._power[:n] = power
    trace._cpu_power[0, :n] = cpu_l
    trace._cpu_power[1, :n] = cpu_b
    trace._wakeups[:n] = wakeups
    trace._len = n
    trace.finalize()
    return trace


@st.composite
def synthetic_traces(draw):
    """4-core (2L+2B) traces from small value pools: many boundary ties."""
    n = draw(st.integers(min_value=1, max_value=60))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    busy = rng.choice(np.array([0.0, 0.5, 1.0], dtype=np.float32), size=(4, n))
    freq_l = rng.choice(np.array([500_000, 800_000], dtype=np.int32), size=n)
    freq_b = rng.choice(np.array([800_000, 1_900_000], dtype=np.int32), size=n)
    power = rng.choice(
        np.array([0.0, 123.25, 4449.5], dtype=np.float32), size=n
    )
    cpu_l = rng.choice(np.array([0.0, 77.125], dtype=np.float32), size=n)
    cpu_b = rng.choice(np.array([0.0, 912.625], dtype=np.float32), size=n)
    wakeups = rng.choice(np.array([0, 1, 3], dtype=np.int32), size=n)
    return _make_trace(busy, freq_l, freq_b, power, cpu_l, cpu_b, wakeups)


@settings(max_examples=40, deadline=None)
@given(synthetic_traces())
def test_hypothesis_all_kernels_bit_equal(trace):
    rle = RLETrace.from_trace(trace)
    dense = rle.to_trace()
    for core_type in (CoreType.LITTLE, CoreType.BIG):
        assert residency(rle, core_type) == frequency_residency(dense, core_type)
        assert freq_histogram(rle, core_type) == dense_freq_histogram(
            dense, core_type
        )
    assert migrations(rle) == dense_migrations(dense)
    assert cluster_energy(rle) == dense_cluster_energy(dense)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6),
            st.integers(min_value=0, max_value=4),
        ),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=1, max_value=40),
)
def test_merge_segments_reconstructs_rows(row_specs, total):
    # Rows of arbitrary run structure over a common tick count: merging
    # then re-expanding per segment must reproduce each dense row.
    rows = []
    for lengths, seed in row_specs:
        lengths = np.asarray(lengths, dtype=np.int64)
        scale = np.maximum(1, total * lengths // lengths.sum())
        # Force exact coverage of `total` ticks on the last run.
        scale[-1] = max(1, total - int(scale[:-1].sum()))
        if scale[:-1].sum() >= total:
            scale = np.array([total], dtype=np.int64)
        values = np.arange(seed, seed + len(scale), dtype=np.int32)
        rows.append((values, scale))
    seg_values, seg_lengths = merge_segments(rows)
    assert int(seg_lengths.sum()) == total
    for (values, lengths), merged in zip(rows, seg_values):
        dense_row = np.repeat(values, lengths)
        dense_merged = np.repeat(merged, seg_lengths)
        np.testing.assert_array_equal(dense_merged, dense_row)


def test_empty_trace_kernels():
    trace = Trace([CoreType.LITTLE, CoreType.BIG], [True, True], max_ticks=1)
    trace.finalize()
    rle = RLETrace.from_trace(trace)
    assert residency(rle, CoreType.LITTLE) == {}
    assert freq_histogram(rle, CoreType.BIG) == {}
    assert migrations(rle) == {"up": 0, "down": 0, "total": 0}
