"""Tests for the DRAM contention model."""

import pytest

from repro.platform.chip import CoreConfig, exynos5422
from repro.platform.coretypes import CoreType, cortex_a7
from repro.platform.perfmodel import WorkClass, throughput_units_per_sec
from repro.sched.params import baseline_config
from repro.sim.engine import SimConfig, Simulator
from repro.experiments.common import fixed_governors
from repro.workloads.spec import SpecBenchmark

MEMORY_HEAVY = WorkClass("membound", compute_fraction=0.25, wss_kb=1800)
CPU_HEAVY = WorkClass("cpubound", compute_fraction=0.99, wss_kb=64)


class TestContentionFactor:
    def test_single_core_no_contention(self):
        chip = exynos5422()
        assert chip.memory_contention(0) == 1.0
        assert chip.memory_contention(1) == 1.0

    def test_scales_with_busy_cores(self):
        chip = exynos5422()
        factors = [chip.memory_contention(n) for n in range(1, 9)]
        assert factors == sorted(factors)
        assert factors[1] == pytest.approx(1.0 + chip.memory_contention_alpha)

    def test_capped(self):
        chip = exynos5422()
        assert chip.memory_contention(100) == 1.5

    def test_disabled_with_zero_alpha(self):
        chip = exynos5422()
        chip.memory_contention_alpha = 0.0
        assert chip.memory_contention(8) == 1.0

    def test_rejects_negative_alpha(self):
        from repro.platform.chip import ChipSpec
        base = exynos5422()
        with pytest.raises(ValueError):
            ChipSpec("x", base.little_cluster, base.big_cluster,
                     memory_contention_alpha=-0.1)


class TestThroughputUnderContention:
    def test_memory_component_inflates(self):
        a7 = cortex_a7()
        free = throughput_units_per_sec(a7, 1_300_000, MEMORY_HEAVY)
        contended = throughput_units_per_sec(
            a7, 1_300_000, MEMORY_HEAVY, memory_contention=1.3
        )
        assert contended < free * 0.9

    def test_compute_bound_barely_affected(self):
        a7 = cortex_a7()
        free = throughput_units_per_sec(a7, 1_300_000, CPU_HEAVY)
        contended = throughput_units_per_sec(
            a7, 1_300_000, CPU_HEAVY, memory_contention=1.5
        )
        assert contended > free * 0.98

    def test_rejects_sub_unity_contention(self):
        with pytest.raises(ValueError):
            throughput_units_per_sec(
                cortex_a7(), 1_300_000, CPU_HEAVY, memory_contention=0.5
            )


class TestEndToEnd:
    def _run_kernels(self, n: int, work: WorkClass) -> float:
        """Elapsed time for n co-running copies of a fixed kernel."""
        chip = exynos5422()
        sim = Simulator(SimConfig(
            chip=chip,
            core_config=CoreConfig(little=4, big=0),
            scheduler=baseline_config(),
            governors=fixed_governors(chip),
            max_seconds=60.0,
        ))
        bench = SpecBenchmark("k", work, total_units=1.0)
        for _ in range(n):
            bench.install(sim, stop_on_finish=False)
        return sim.run().duration_s

    def test_corunning_memory_kernels_slow_down(self):
        solo = self._run_kernels(1, MEMORY_HEAVY)
        four = self._run_kernels(4, MEMORY_HEAVY)
        # Four copies on four cores: without contention, same elapsed;
        # with it, clearly slower.
        assert four > solo * 1.10

    def test_corunning_cpu_kernels_unaffected(self):
        solo = self._run_kernels(1, CPU_HEAVY)
        four = self._run_kernels(4, CPU_HEAVY)
        assert four < solo * 1.03
