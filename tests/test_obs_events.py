"""Tests for :mod:`repro.obs.events` — the bus and the engine emissions."""

from __future__ import annotations

import pytest

from repro.obs import Observation
from repro.obs.events import (
    ClusterSwitched,
    EventBus,
    FreqChanged,
    IdleFastForward,
    InputBoost,
    TaskBlocked,
    TaskFinished,
    TaskMigrated,
    TaskSpawned,
    TaskWoken,
    ThermalCap,
    event_to_dict,
)
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.platform.thermal import ThermalParams
from repro.sched.cluster_switch import ClusterSwitchingScheduler
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, Work
from repro.workloads.mobile import make_app


def _observed_run(app_name: str = "bbench", seconds: float = 4.0, **config):
    sim = Simulator(SimConfig(max_seconds=seconds, **config))
    obs = Observation.attach(sim)
    make_app(app_name).install(sim)
    trace = sim.run()
    return sim, obs, trace


class TestEventBus:
    def test_emit_stamps_tick_from_clock(self):
        now = {"tick": 7}
        bus = EventBus(clock=lambda: now["tick"])
        bus.emit(TaskSpawned(task="a", tid=1))
        now["tick"] = 42
        bus.emit(TaskSpawned(task="b", tid=2))
        assert [e.tick for e in bus] == [7, 42]

    def test_emit_preserves_explicit_tick(self):
        bus = EventBus(clock=lambda: 99)
        bus.emit(FreqChanged(cluster="big", old_khz=1, new_khz=2, tick=5))
        assert bus.events[0].tick == 5

    def test_muted_suppresses_and_nests(self):
        bus = EventBus()
        with bus.muted():
            bus.emit(TaskSpawned(task="a", tid=1))
            with bus.muted():
                bus.emit(TaskSpawned(task="b", tid=2))
            bus.emit(TaskSpawned(task="c", tid=3))
        bus.emit(TaskSpawned(task="d", tid=4))
        assert [e.task for e in bus] == ["d"]

    def test_subscribers_see_every_event_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.tid))
        for tid in (3, 1, 2):
            bus.emit(TaskSpawned(task="t", tid=tid))
        assert seen == [3, 1, 2]

    def test_of_type_filters(self):
        bus = EventBus()
        bus.emit(TaskSpawned(task="a", tid=1))
        bus.emit(FreqChanged(cluster="big", old_khz=1, new_khz=2))
        bus.emit(TaskBlocked(task="a", tid=1))
        assert len(bus.of_type(TaskSpawned, TaskBlocked)) == 2
        assert len(bus.of_type(FreqChanged)) == 1
        assert len(bus) == 3

    def test_event_to_dict_is_flat_json(self):
        d = event_to_dict(TaskMigrated(
            task="render", tid=4, src_core=0, dst_core=5,
            reason="up", load=900.0, tick=12,
        ))
        assert d == {
            "event": "task_migrated", "task": "render", "tid": 4,
            "src_core": 0, "dst_core": 5, "reason": "up",
            "load": 900.0, "tick": 12,
        }


class TestEngineEmissions:
    def test_lifecycle_events_are_balanced(self):
        sim, obs, _trace = _observed_run()
        spawned = obs.bus.of_type(TaskSpawned)
        assert len(spawned) == len(sim.tasks)
        # Wakes and blocks interleave; every woken task blocked before.
        assert len(obs.bus.of_type(TaskWoken)) <= len(obs.bus.of_type(TaskBlocked))

    def test_spawned_events_carry_placement_core(self):
        sim, obs, _trace = _observed_run()
        placed = [e for e in obs.bus.of_type(TaskSpawned) if e.core is not None]
        assert placed, "at least one spawn is immediately runnable"
        n_cores = len(sim.cores)
        assert all(0 <= e.core < n_cores for e in placed)

    def test_migration_events_match_task_accounting(self):
        sim, obs, _trace = _observed_run()
        migrated = obs.bus.of_type(TaskMigrated)
        assert migrated, "bbench migrates under baseline HMP"
        non_balance = [e for e in migrated if e.reason != "balance"]
        assert len(non_balance) == sum(t.migrations for t in sim.tasks)
        assert {e.reason for e in migrated} <= {
            "up", "down", "offload", "balance",
        }

    def test_freq_events_chain_per_cluster(self):
        _sim, obs, _trace = _observed_run()
        for cluster in ("little", "big"):
            changes = [
                e for e in obs.bus.of_type(FreqChanged) if e.cluster == cluster
            ]
            for prev, cur in zip(changes, changes[1:]):
                assert prev.new_khz == cur.old_khz
                assert prev.tick <= cur.tick

    def test_fastforward_events_match_engine_counters(self):
        def _standby(ctx):
            while True:
                yield Work(0.002)
                yield Sleep(1.0)

        sim = Simulator(SimConfig(max_seconds=10.0))
        obs = Observation.attach(sim)
        sim.spawn(Task("standby", _standby, COMPUTE_BOUND))
        sim.run()
        spans = obs.bus.of_type(IdleFastForward)
        assert sim.fastforward_spans > 0, "standby run must fast-forward"
        assert len(spans) == sim.fastforward_spans
        assert sum(e.n_ticks for e in spans) == sim.fastforward_ticks

    def test_input_boost_events(self):
        from dataclasses import replace

        from repro.sched.params import baseline_config

        base = baseline_config()
        boosted = replace(
            base, governor=replace(base.governor, input_boost_ms=100)
        )
        # Latency apps drive user actions, each opening with a touch event.
        _sim, obs, _trace = _observed_run("bbench", scheduler=boosted)
        boosts = obs.bus.of_type(InputBoost)
        assert boosts, "games deliver touch input"
        assert all(e.cluster in ("little", "big") and e.hispeed_khz > 0
                   for e in boosts)

    def test_thermal_cap_events(self):
        sim = Simulator(SimConfig(
            max_seconds=8.0,
            thermal=ThermalParams(ambient_c=70.0, trip_c=72.0, release_c=71.0),
        ))
        obs = Observation.attach(sim)
        make_app("eternity-warrior-2").install(sim)
        sim.run()
        caps = obs.bus.of_type(ThermalCap)
        assert caps, "a near-throttle ambient must cap the big cluster"
        assert all(e.cluster == "big" and e.cap_khz != e.old_cap_khz
                   for e in caps)
        thermal_freq = [
            e for e in obs.bus.of_type(FreqChanged) if e.reason == "thermal"
        ]
        # A cap below the current OPP also clamps the frequency.
        assert all(e.new_khz < e.old_khz for e in thermal_freq)

    def test_cluster_switch_events(self):
        def _spin(ctx):
            while True:
                yield Work(1.0)

        def _light(ctx):
            while True:
                yield Work(0.001)
                yield Sleep(0.03)

        sim = Simulator(SimConfig(
            max_seconds=3.0, scheduler_factory=ClusterSwitchingScheduler,
        ))
        obs = Observation.attach(sim)
        sim.spawn(Task("spin", _spin, COMPUTE_BOUND))
        sim.spawn(Task("light", _light, COMPUTE_BOUND))
        sim.run()
        switches = obs.bus.of_type(ClusterSwitched)
        assert len(switches) == sim.hmp.switches
        assert switches, "a heavy spinner flips the switcher at least once"
        assert all(e.active in ("little", "big") for e in switches)
        herds = [
            e for e in obs.bus.of_type(TaskMigrated)
            if e.reason == "cluster-switch"
        ]
        assert herds, "switching herds runnable tasks across"

    def test_attach_observer_installs_everywhere(self):
        sim = Simulator(SimConfig(max_seconds=1.0))
        bus = sim.attach_observer(EventBus())
        assert sim.obs is bus
        assert sim.hmp.obs is bus
        assert all(dom.obs is bus for dom in sim.domains.values())


class TestObservationBundle:
    def test_snapshot_is_idempotent_at_end(self):
        _sim, obs, _trace = _observed_run(seconds=2.0)
        a = obs.snapshot()
        b = obs.snapshot()
        assert a.to_dict() == b.to_dict()

    def test_refinalizing_at_other_tick_raises(self):
        sim, obs, _trace = _observed_run(seconds=2.0)
        obs.snapshot()
        with pytest.raises(RuntimeError):
            obs.collector.finalize(sim.tick + 1)
