"""Tests for :mod:`repro.obs.export` — Perfetto, JSONL, summary, validator."""

from __future__ import annotations

import io
import json

from repro.obs import Observation
from repro.obs.events import (
    FreqChanged,
    IdleFastForward,
    TaskMigrated,
    event_to_dict,
)
from repro.obs.export import (
    export_events_jsonl,
    export_metrics_json,
    export_perfetto,
    perfetto_trace_events,
    render_summary,
    validate_trace_events,
)
from repro.sim.engine import SimConfig, Simulator
from repro.workloads.mobile import make_app


def _observed_run(app_name: str = "bbench", seconds: float = 4.0, **config):
    sim = Simulator(SimConfig(max_seconds=seconds, **config))
    obs = Observation.attach(sim)
    make_app(app_name).install(sim)
    trace = sim.run()
    return sim, obs, trace


class TestPerfettoTraceEvents:
    def test_payload_passes_own_validator(self):
        _sim, obs, trace = _observed_run()
        events = perfetto_trace_events(trace, obs.events)
        assert validate_trace_events({"traceEvents": events}) == []

    def test_metadata_names_every_core_and_aux_threads(self):
        _sim, obs, trace = _observed_run()
        events = perfetto_trace_events(trace, obs.events)
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "biglittle-sim" in names
        for i, ct in enumerate(trace.core_types):
            assert f"cpu{i} {ct.value}" in names
        assert "sched/governor decisions" in names
        assert "engine" in names

    def test_disabled_cores_are_marked_and_untracked(self):
        from repro.platform.chip import CoreConfig

        _sim, obs, trace = _observed_run(
            core_config=CoreConfig(little=2, big=1), seconds=2.0,
        )
        events = perfetto_trace_events(trace, obs.events)
        meta_names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        off = [n for n in meta_names if n.endswith("(off)")]
        assert off, "a reduced config leaves some cores disabled"
        counters = {e["name"] for e in events if e["ph"] == "C"}
        for i in range(trace.n_cores):
            if not trace.enabled[i]:
                assert f"busy cpu{i}" not in counters

    def test_counters_are_changepoint_compressed(self):
        _sim, obs, trace = _observed_run()
        events = perfetto_trace_events(trace, obs.events)
        busy0 = [e for e in events if e["ph"] == "C" and e["name"] == "busy cpu0"]
        assert busy0
        assert len(busy0) < len(trace)
        # Counter samples never repeat the same value back-to-back.
        values = [e["args"]["busy"] for e in busy0]
        assert all(a != b for a, b in zip(values, values[1:]))

    def test_decision_instants_present(self):
        _sim, obs, trace = _observed_run()
        events = perfetto_trace_events(trace, obs.events)
        instants = [e for e in events if e["ph"] == "i"]
        n_migrations = len(obs.bus.of_type(TaskMigrated))
        migrate_instants = [
            e for e in instants if e["name"].startswith("migrate ")
        ]
        assert len(migrate_instants) == n_migrations
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == len(obs.bus.of_type(IdleFastForward))
        for e in spans:
            assert e["dur"] == e["args"]["n_ticks"] * 1000

    def test_timestamps_are_microseconds(self):
        _sim, obs, trace = _observed_run()
        events = perfetto_trace_events(trace, obs.events)
        migs = obs.bus.of_type(TaskMigrated)
        migrate_instants = [
            e for e in events
            if e["ph"] == "i" and e["name"].startswith("migrate ")
        ]
        for src, rendered in zip(migs, migrate_instants):
            assert rendered["ts"] == src.tick * 1000

    def test_trace_alone_is_exportable(self):
        _sim, _obs, trace = _observed_run(seconds=2.0)
        events = perfetto_trace_events(trace)
        assert validate_trace_events({"traceEvents": events}) == []
        assert not any(e["ph"] in ("i", "X") for e in events)


class TestExportDestinations:
    def test_export_perfetto_to_path_and_stream(self, tmp_path):
        _sim, obs, trace = _observed_run(seconds=2.0)
        dest = tmp_path / "trace.json"
        n = export_perfetto(str(dest), trace, obs.events,
                            metadata={"app": "bbench"})
        payload = json.loads(dest.read_text())
        assert len(payload["traceEvents"]) == n
        assert payload["otherData"] == {"app": "bbench"}
        assert payload["displayTimeUnit"] == "ms"
        assert validate_trace_events(payload) == []

        buf = io.StringIO()
        n2 = export_perfetto(buf, trace, obs.events)
        stream_payload = json.loads(buf.getvalue())
        assert n2 == n
        assert "otherData" not in stream_payload

    def test_export_events_jsonl_round_trip(self, tmp_path):
        _sim, obs, _trace = _observed_run(seconds=2.0)
        dest = tmp_path / "events.jsonl"
        n = export_events_jsonl(str(dest), obs.events)
        lines = dest.read_text().splitlines()
        assert len(lines) == n == len(obs.bus)
        parsed = [json.loads(line) for line in lines]
        assert parsed == [event_to_dict(e) for e in obs.events]
        # Every line is self-describing and tick-stamped.
        assert all("event" in d and d["tick"] >= 0 for d in parsed)

    def test_export_metrics_json(self, tmp_path):
        _sim, obs, _trace = _observed_run(seconds=2.0)
        dest = tmp_path / "metrics.json"
        export_metrics_json(str(dest), obs.snapshot())
        payload = json.loads(dest.read_text())
        assert payload == obs.snapshot().to_dict()


class TestRenderSummary:
    def test_summary_mentions_headline_sections(self):
        _sim, obs, _trace = _observed_run()
        text = render_summary(obs.snapshot())
        assert "Migrations" in text
        assert "little cluster OPP residency" in text
        assert "big cluster OPP residency" in text
        assert "total" in text

    def test_summary_of_empty_snapshot_is_harmless(self):
        from repro.obs.metrics import MetricsSnapshot

        text = render_summary(MetricsSnapshot())
        assert "Migrations" in text


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events(None) != []

    def test_rejects_missing_trace_events(self):
        assert validate_trace_events({}) == ["missing or non-list 'traceEvents'"]

    def test_flags_structural_problems(self):
        bad = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "ts": 0},          # unknown phase
            {"ph": "i", "pid": 1, "ts": 0},                        # no name
            {"ph": "C", "name": "c", "pid": 1, "ts": 0,
             "args": {"v": "high"}},                               # non-numeric
            {"ph": "X", "name": "d", "pid": 1, "ts": 0},           # no dur
            {"ph": "i", "name": "s", "pid": 1, "ts": -5, "s": "q"},  # bad ts+scope
            {"ph": "M", "name": "thread_name", "pid": 1, "args": {}},  # no name
        ]}
        errors = validate_trace_events(bad)
        assert len(errors) >= 6

    def test_error_list_is_capped(self):
        bad = {"traceEvents": [{"ph": "Z"}] * 100}
        errors = validate_trace_events(bad)
        assert len(errors) == 21
        assert errors[-1].startswith("... and ")
