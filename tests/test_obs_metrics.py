"""Tests for :mod:`repro.obs.metrics` — primitives, collector, snapshot."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import Observation
from repro.obs.events import FreqChanged, TaskMigrated
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    MetricsSnapshot,
    attach_collector,
)
from repro.platform.coretypes import CoreType
from repro.sim.engine import SimConfig, Simulator
from repro.workloads.mobile import make_app


def _observed_run(app_name: str = "bbench", seconds: float = 4.0, **config):
    sim = Simulator(SimConfig(max_seconds=seconds, **config))
    obs = Observation.attach(sim)
    make_app(app_name).install(sim)
    trace = sim.run()
    return sim, obs, trace


class TestPrimitives:
    def test_counter_accumulates_and_rejects_negative(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_last_set(self):
        g = Gauge("level")
        g.set(3.5)
        g.set(-1.0)
        assert g.value == -1.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram("lat", edges=(1, 10, 100))
        for v in (0.5, 1, 5, 10, 11, 1000):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 6
        assert d["sum"] == pytest.approx(1027.5)
        assert d["min"] == 0.5
        assert d["max"] == 1000
        # Buckets are (-inf,1], (1,10], (10,100], (100,inf).
        assert d["counts"] == [2, 2, 1, 1]

    def test_histogram_edge_values_land_in_closed_bucket(self):
        h = Histogram("x", edges=(8, 16))
        h.observe(8)
        h.observe(16)
        counts = h.to_dict()["counts"]
        assert counts[0] == 1
        assert counts[1] == 1

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("migrations.up")
        b = reg.counter("migrations.up")
        assert a is b
        with pytest.raises(ValueError):
            reg.histogram("h", edges=(1, 2))
            reg.histogram("h", edges=(1, 3))


class TestSnapshotRoundTrip:
    def test_json_round_trip(self):
        _sim, obs, _trace = _observed_run(seconds=2.0)
        snap = obs.snapshot()
        restored = MetricsSnapshot.from_dict(json.loads(snap.to_json()))
        assert restored.to_dict() == snap.to_dict()

    def test_group_prefix_selects(self):
        _sim, obs, _trace = _observed_run(seconds=2.0)
        snap = obs.snapshot()
        group = snap.group("migrations")
        assert group
        assert "total" in group
        assert group["total"] == snap.counter("migrations.total")


class TestCollectorTraceConsistency:
    """The snapshot must agree with the ground-truth Trace arrays."""

    def test_migration_total_matches_task_accounting(self):
        sim, obs, _trace = _observed_run()
        snap = obs.snapshot()
        total = snap.counter("migrations.total")
        balance = snap.counter("migrations.balance")
        assert total - balance == sum(t.migrations for t in sim.tasks)
        assert total == len(obs.bus.of_type(TaskMigrated))

    def test_freq_events_reconstruct_trace_series(self):
        sim, obs, trace = _observed_run()
        for ct in (CoreType.LITTLE, CoreType.BIG):
            series = np.empty(len(trace), dtype=np.int64)
            changes = [
                e for e in obs.bus.of_type(FreqChanged)
                if e.cluster == ct.value
            ]
            # Seed from the frequency before the first change (or the
            # whole-run frequency when the governor never moved).
            recorded = trace.freq_khz(ct)
            series[:] = changes[0].old_khz if changes else recorded[0]
            for e in changes:
                series[e.tick:] = e.new_khz
            assert np.array_equal(series, recorded)

    def test_residency_sums_to_run_length(self):
        _sim, obs, trace = _observed_run()
        snap = obs.snapshot()
        for cluster in ("little", "big"):
            residency = snap.residency_ticks(cluster)
            assert sum(residency.values()) == len(trace)

    def test_freq_transitions_match_event_pairs(self):
        _sim, obs, _trace = _observed_run()
        snap = obs.snapshot()
        for cluster in ("little", "big"):
            changes = [
                e for e in obs.bus.of_type(FreqChanged)
                if e.cluster == cluster
            ]
            expected: dict[tuple[int, int], int] = {}
            for e in changes:
                key = (e.old_khz, e.new_khz)
                expected[key] = expected.get(key, 0) + 1
            assert snap.freq_transitions(cluster) == expected

    def test_fastforward_histogram_matches_engine(self):
        from repro.platform.perfmodel import COMPUTE_BOUND
        from repro.sim.task import Sleep, Task, Work

        def _standby(ctx):
            while True:
                yield Work(0.002)
                yield Sleep(1.0)

        sim = Simulator(SimConfig(max_seconds=10.0))
        obs = Observation.attach(sim)
        sim.spawn(Task("standby", _standby, COMPUTE_BOUND))
        sim.run()
        snap = obs.snapshot()
        assert snap.counter("fastforward.spans") == sim.fastforward_spans
        assert snap.counter("fastforward.ticks") == sim.fastforward_ticks
        hist = snap.histograms["fastforward_span_ticks"]
        assert hist["count"] == sim.fastforward_spans
        assert hist["sum"] == sim.fastforward_ticks

    def test_total_ticks_gauge(self):
        sim, obs, trace = _observed_run(seconds=2.0)
        snap = obs.snapshot()
        assert snap.gauges["total_ticks"] == sim.tick == len(trace)


class TestAttachCollector:
    def test_attach_collector_subscribes(self):
        from repro.obs.events import EventBus

        bus = EventBus()
        collector = attach_collector(bus)
        assert isinstance(collector, MetricsCollector)
        bus.emit(TaskMigrated(task="t", tid=1, src_core=0, dst_core=4,
                              reason="up", tick=3))
        collector.finalize(10)
        snap = collector.snapshot()
        assert snap.counter("migrations.up") == 1
        assert snap.counter("migrations.total") == 1
