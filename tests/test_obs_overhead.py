"""Observability must be free when off and invisible when on.

Two guarantees, both load-bearing for the paper artifacts:

- **zero-cost disabled**: an unobserved run constructs *no* event
  objects at all — every emission site is behind one ``if self.obs``
  guard, proven here by counting every ``__init__`` of every event
  type;
- **bit-exact enabled**: attaching an observer never changes the
  simulation — power/busy/frequency arrays are identical with and
  without the bus, and the idle fast-forward path stays eligible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import Observation
from repro.obs.events import EVENT_TYPES
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, Work
from repro.workloads.mobile import make_app

GOLDEN_APPS = ["bbench", "angry-bird", "youtube", "video-player", "maps"]


def _counting_inits(monkeypatch):
    """Patch every event type's ``__init__`` to count constructions."""
    counts = {cls.__name__: 0 for cls in EVENT_TYPES}
    for cls in EVENT_TYPES:
        original = cls.__init__

        def patched(self, *args, _original=original, _name=cls.__name__,
                    **kwargs):
            counts[_name] += 1
            _original(self, *args, **kwargs)

        monkeypatch.setattr(cls, "__init__", patched)
    return counts


class TestZeroCostDisabled:
    def test_unobserved_run_allocates_no_events(self, monkeypatch):
        counts = _counting_inits(monkeypatch)
        sim = Simulator(SimConfig(max_seconds=4.0))
        make_app("bbench").install(sim)
        sim.run()
        assert counts == {cls.__name__: 0 for cls in EVENT_TYPES}

    def test_observed_run_does_allocate(self, monkeypatch):
        counts = _counting_inits(monkeypatch)
        sim = Simulator(SimConfig(max_seconds=4.0))
        Observation.attach(sim)
        make_app("bbench").install(sim)
        sim.run()
        assert sum(counts.values()) > 0


class TestBitExactEnabled:
    @pytest.mark.parametrize("app_name", GOLDEN_APPS)
    def test_observation_never_changes_results(self, app_name):
        def run(observe):
            sim = Simulator(SimConfig(max_seconds=4.0))
            if observe:
                Observation.attach(sim)
            make_app(app_name).install(sim)
            return sim, sim.run()

        sim_off, trace_off = run(observe=False)
        sim_on, trace_on = run(observe=True)
        assert np.array_equal(trace_off.power_mw, trace_on.power_mw)
        assert np.array_equal(trace_off.busy, trace_on.busy)
        for ct in sim_off.domains:
            assert np.array_equal(
                trace_off.freq_khz(ct), trace_on.freq_khz(ct)
            )
        assert sim_off.fastforward_spans == sim_on.fastforward_spans
        assert sim_off.fastforward_ticks == sim_on.fastforward_ticks

    def test_fast_forward_stays_eligible_under_observation(self):
        def _standby(ctx):
            while True:
                yield Work(0.002)
                yield Sleep(1.0)

        def run(observe):
            sim = Simulator(SimConfig(max_seconds=10.0))
            if observe:
                Observation.attach(sim)
            sim.spawn(Task("standby", _standby, COMPUTE_BOUND))
            trace = sim.run()
            return sim, trace

        sim_off, trace_off = run(observe=False)
        sim_on, trace_on = run(observe=True)
        assert sim_on.fastforward_spans > 0
        assert sim_on.fastforward_spans == sim_off.fastforward_spans
        assert sim_on.fastforward_ticks == sim_off.fastforward_ticks
        assert np.array_equal(trace_off.power_mw, trace_on.power_mw)
