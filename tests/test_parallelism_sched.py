"""Tests for the parallelism-aware scheduler (paper Sec. IV.A, approach 2)."""

import pytest

from repro.platform.chip import CoreConfig
from repro.platform.coretypes import CoreType
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.sched.parallelism_sched import ParallelismAwareScheduler
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, Work


def make_sim(max_seconds=3.0, seed=0, **kwargs):
    return Simulator(SimConfig(
        max_seconds=max_seconds,
        scheduler_factory=ParallelismAwareScheduler,
        seed=seed,
        **kwargs,
    ))


def spin(ctx):
    while True:
        yield Work(1.0)


def duty(ctx):
    while True:
        yield Work(0.004)
        yield Sleep(0.004)


class TestSerialPhase:
    def test_single_heavy_task_promoted_to_big(self):
        sim = make_sim()
        sim.spawn(Task("serial", spin, COMPUTE_BOUND))
        trace = sim.run()
        big = trace.cores_of_type(CoreType.BIG)
        second_half = trace.busy[big, len(trace) // 2:]
        assert second_half.sum(axis=0).mean() > 0.9

    def test_low_load_wakeups_not_promoted(self):
        sim = make_sim()

        def tiny(ctx):
            while True:
                yield Work(0.0005)
                yield Sleep(0.05)

        sim.spawn(Task("timer", tiny, COMPUTE_BOUND))
        trace = sim.run()
        big = trace.cores_of_type(CoreType.BIG)
        assert trace.busy[big].sum() == 0.0


class TestParallelPhase:
    def test_abundant_parallelism_stays_little(self):
        sim = make_sim(max_seconds=2.0)
        # More runnable tasks than big cores: a parallel phase.
        for i in range(6):
            sim.spawn(Task(f"w{i}", duty, COMPUTE_BOUND))
        trace = sim.run()
        big = trace.cores_of_type(CoreType.BIG)
        little = trace.cores_of_type(CoreType.LITTLE)
        assert trace.busy[little].sum() > 0
        # Mostly little: the occasional tick may dip under the threshold
        # when several tasks sleep simultaneously.
        big_share = trace.busy[big].sum() / trace.busy.sum()
        assert big_share < 0.25

    def test_demotes_when_parallelism_appears(self):
        sim = make_sim(max_seconds=4.0)
        serial = Task("serial", spin, COMPUTE_BOUND)
        sim.spawn(serial)

        def late_crowd(ctx):
            yield Sleep(1.5)
            while True:
                yield Work(0.004)
                yield Sleep(0.002)

        for i in range(5):
            sim.spawn(Task(f"late{i}", late_crowd, COMPUTE_BOUND))
        trace = sim.run()
        big = trace.cores_of_type(CoreType.BIG)
        early = trace.busy[big, 800:1400].sum(axis=0).mean()
        late = trace.busy[big, 2500:].sum(axis=0).mean()
        # Big usage collapses once the crowd arrives.
        assert early > 0.8
        assert late < 0.4


class TestDegenerateConfigs:
    def test_little_only(self):
        sim = make_sim(core_config=CoreConfig(4, 0), max_seconds=1.0)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        trace = sim.run()
        assert trace.busy[trace.cores_of_type(CoreType.BIG)].sum() == 0.0

    def test_big_only(self):
        sim = make_sim(core_config=CoreConfig(0, 4), max_seconds=1.0)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        trace = sim.run()
        assert trace.busy[trace.cores_of_type(CoreType.BIG)].sum() > 0.0
