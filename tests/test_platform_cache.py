"""Tests for the L2 working-set capacity model."""

import pytest

from repro.platform.cache import DRAM_PENALTY, memory_time_factor, miss_ratio


class TestMissRatio:
    def test_fits_entirely(self):
        assert miss_ratio(512, 100) == 0.0
        assert miss_ratio(512, 512) == 0.0

    def test_partial_fit(self):
        # Working set twice the cache: half the traffic misses.
        assert miss_ratio(512, 1024) == pytest.approx(0.5)

    def test_asymptotically_all_miss(self):
        assert miss_ratio(512, 512_000) == pytest.approx(0.999)

    def test_monotonic_in_working_set(self):
        ratios = [miss_ratio(512, w) for w in (256, 512, 768, 1024, 2048, 4096)]
        assert ratios == sorted(ratios)

    def test_monotonic_in_cache_size(self):
        # Bigger cache -> fewer misses for the same working set.
        assert miss_ratio(2048, 1536) < miss_ratio(512, 1536)

    def test_big_little_l2_asymmetry(self):
        # The paper's motivating case: a working set fitting the big
        # cluster's 2MB L2 but thrashing the little cluster's 512KB.
        assert miss_ratio(2048, 2000) == 0.0
        assert miss_ratio(512, 2000) > 0.7

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            miss_ratio(0, 100)
        with pytest.raises(ValueError):
            miss_ratio(512, -1)


class TestMemoryTimeFactor:
    def test_no_penalty_when_fitting(self):
        assert memory_time_factor(2048, 1024) == 1.0

    def test_scales_with_dram_penalty(self):
        assert memory_time_factor(512, 1024, dram_penalty=4.0) == pytest.approx(3.0)
        assert memory_time_factor(512, 1024, dram_penalty=8.0) == pytest.approx(5.0)

    def test_default_penalty(self):
        assert memory_time_factor(512, 1024) == pytest.approx(1.0 + 0.5 * DRAM_PENALTY)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ValueError):
            memory_time_factor(512, 1024, dram_penalty=-1.0)
