"""Tests for chip specs and core-enable configurations."""

import pytest

from repro.platform.chip import ChipSpec, CoreConfig, exynos5422
from repro.platform.coretypes import (
    ClusterSpec,
    CoreType,
    cortex_a7,
    cortex_a15,
)
from repro.platform.opp import big_opp_table, little_opp_table


class TestCoreConfig:
    def test_labels(self):
        assert CoreConfig(4, 4).label() == "L4+B4"
        assert CoreConfig(2, 0).label() == "L2"
        assert CoreConfig(0, 4).label() == "B4"

    def test_parse_roundtrip(self):
        for label in ["L4+B4", "L2", "B4", "L2+B1", "L4+B2"]:
            assert CoreConfig.parse(label).label() == label

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            CoreConfig.parse("X3")

    def test_rejects_empty_config(self):
        with pytest.raises(ValueError):
            CoreConfig(0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CoreConfig(-1, 4)

    def test_total_and_count(self):
        config = CoreConfig(2, 3)
        assert config.total == 5
        assert config.count(CoreType.LITTLE) == 2
        assert config.count(CoreType.BIG) == 3


class TestChipSpec:
    def test_exynos_preset_shape(self):
        chip = exynos5422()
        assert chip.little_cluster.num_cores == 4
        assert chip.big_cluster.num_cores == 4
        assert chip.little_cluster.spec.l2_kb == 512
        assert chip.big_cluster.spec.l2_kb == 2048

    def test_max_config(self):
        assert exynos5422().max_config().label() == "L4+B4"

    def test_validate_rejects_oversized_config(self):
        chip = exynos5422()
        with pytest.raises(ValueError):
            chip.validate_config(CoreConfig(5, 4))
        with pytest.raises(ValueError):
            chip.validate_config(CoreConfig(4, 5))

    def test_cluster_accessor(self):
        chip = exynos5422()
        assert chip.cluster(CoreType.LITTLE) is chip.little_cluster
        assert chip.cluster(CoreType.BIG) is chip.big_cluster

    def test_screen_on_adds_power(self):
        off = exynos5422(screen_on=False)
        on = exynos5422(screen_on=True)
        assert on.power_model.params.screen_mw > 0
        assert off.power_model.params.screen_mw == 0

    def test_rejects_swapped_clusters(self):
        little = ClusterSpec(cortex_a7(), 4, little_opp_table())
        big = ClusterSpec(cortex_a15(), 4, big_opp_table())
        with pytest.raises(ValueError):
            ChipSpec("bad", little_cluster=big, big_cluster=little)


class TestCoreSpecs:
    def test_table1_parameters(self):
        a7, a15 = cortex_a7(), cortex_a15()
        assert a7.issue_width == 2
        assert a15.issue_width == 3
        assert a7.ipc_ratio == 1.0
        assert a15.ipc_ratio > 1.0

    def test_rejects_bad_ipc(self):
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(cortex_a7(), ipc_ratio=0.0)
