"""Tests for operating-performance-point tables."""

import pytest

from repro.platform.opp import (
    OPP,
    OPPTable,
    big_opp_table,
    linear_voltage_table,
    little_opp_table,
)


class TestOPP:
    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            OPP(freq_khz=0, voltage_v=1.0)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ValueError):
            OPP(freq_khz=1000, voltage_v=0.0)


class TestOPPTable:
    def make(self):
        return OPPTable([
            OPP(500_000, 0.9),
            OPP(1_000_000, 1.0),
            OPP(1_300_000, 1.2),
        ])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OPPTable([])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            OPPTable([OPP(1_000_000, 1.0), OPP(500_000, 0.9)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            OPPTable([OPP(500_000, 0.9), OPP(500_000, 1.0)])

    def test_min_max(self):
        table = self.make()
        assert table.min_khz == 500_000
        assert table.max_khz == 1_300_000

    def test_voltage_at_exact_point(self):
        assert self.make().voltage_at(1_000_000) == pytest.approx(1.0)

    def test_voltage_at_missing_point_raises(self):
        with pytest.raises(KeyError):
            self.make().voltage_at(800_000)

    def test_contains(self):
        table = self.make()
        assert table.contains(500_000)
        assert not table.contains(600_000)

    def test_ceil_snaps_up(self):
        table = self.make()
        assert table.ceil(600_000) == 1_000_000
        assert table.ceil(1_000_000) == 1_000_000

    def test_ceil_clamps_to_max(self):
        assert self.make().ceil(9_999_999) == 1_300_000

    def test_floor_snaps_down(self):
        table = self.make()
        assert table.floor(1_200_000) == 1_000_000
        assert table.floor(500_000) == 500_000

    def test_floor_clamps_to_min(self):
        assert self.make().floor(100_000) == 500_000

    def test_len_and_iter(self):
        table = self.make()
        assert len(table) == 3
        assert [p.freq_khz for p in table] == [500_000, 1_000_000, 1_300_000]


class TestLinearVoltageTable:
    def test_endpoint_voltages(self):
        table = linear_voltage_table(500_000, 1_300_000, 100_000, 0.9, 1.2)
        assert table.voltage_at(500_000) == pytest.approx(0.9)
        assert table.voltage_at(1_300_000) == pytest.approx(1.2)

    def test_voltage_monotonic(self):
        table = linear_voltage_table(800_000, 1_900_000, 100_000, 0.9, 1.35)
        voltages = [p.voltage_v for p in table]
        assert voltages == sorted(voltages)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            linear_voltage_table(500_000, 1_300_000, 0, 0.9, 1.2)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            linear_voltage_table(1_300_000, 500_000, 100_000, 0.9, 1.2)


class TestPlatformTables:
    def test_little_range_matches_paper(self):
        table = little_opp_table()
        assert table.min_khz == 500_000
        assert table.max_khz == 1_300_000
        assert len(table) == 9  # 100 MHz steps

    def test_big_range_matches_paper(self):
        table = big_opp_table()
        assert table.min_khz == 800_000
        assert table.max_khz == 1_900_000
        assert len(table) == 12
