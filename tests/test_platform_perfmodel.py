"""Tests for the analytical throughput model."""

import pytest

from repro.platform.coretypes import cortex_a7, cortex_a15
from repro.platform.perfmodel import (
    COMPUTE_BOUND,
    WorkClass,
    seconds_per_unit,
    speedup,
    throughput_units_per_sec,
)
from repro.units import F_REF_KHZ

A7 = cortex_a7()
A15 = cortex_a15()


class TestWorkClass:
    def test_rejects_zero_compute_fraction(self):
        with pytest.raises(ValueError):
            WorkClass("w", compute_fraction=0.0)

    def test_rejects_compute_fraction_above_one(self):
        with pytest.raises(ValueError):
            WorkClass("w", compute_fraction=1.5)

    def test_rejects_bad_ilp(self):
        with pytest.raises(ValueError):
            WorkClass("w", ilp=1.2)
        with pytest.raises(ValueError):
            WorkClass("w", ilp=-0.1)

    def test_effective_ipc_interpolates(self):
        full = WorkClass("full", ilp=1.0)
        none = WorkClass("none", ilp=0.0)
        half = WorkClass("half", ilp=0.5)
        assert full.effective_ipc_ratio(A15) == pytest.approx(1.8)
        assert none.effective_ipc_ratio(A15) == pytest.approx(1.0)
        assert half.effective_ipc_ratio(A15) == pytest.approx(1.4)

    def test_little_core_unaffected_by_ilp(self):
        assert WorkClass("w", ilp=0.0).effective_ipc_ratio(A7) == 1.0
        assert WorkClass("w", ilp=1.0).effective_ipc_ratio(A7) == 1.0


class TestThroughputNormalization:
    def test_little_at_reference_is_one_unit_per_second(self):
        # The work-unit definition: little core @ 1.3GHz, compute-bound.
        assert throughput_units_per_sec(A7, F_REF_KHZ, COMPUTE_BOUND) == pytest.approx(1.0)

    def test_throughput_scales_with_frequency_for_compute(self):
        t_full = throughput_units_per_sec(A7, 1_300_000, COMPUTE_BOUND)
        t_half = throughput_units_per_sec(A7, 650_000, COMPUTE_BOUND)
        assert t_full / t_half == pytest.approx(2.0)

    def test_memory_component_does_not_scale_with_frequency(self):
        memory_bound = WorkClass("mem", compute_fraction=0.2, wss_kb=64)
        t_full = throughput_units_per_sec(A7, 1_300_000, memory_bound)
        t_half = throughput_units_per_sec(A7, 650_000, memory_bound)
        # Far less than 2x because 80% of time is frequency-independent.
        assert 1.0 < t_full / t_half < 1.3

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            seconds_per_unit(A7, 0, COMPUTE_BOUND)


class TestPaperSpeedupShape:
    """Section III.A findings the model must reproduce."""

    def test_big_always_faster_at_equal_frequency(self):
        for work in [
            COMPUTE_BOUND,
            WorkClass("mem", compute_fraction=0.3, wss_kb=1800),
            WorkClass("lowilp", ilp=0.2),
        ]:
            assert speedup(A15, 1_300_000, A7, 1_300_000, work) > 1.0

    def test_compute_bound_speedup_is_ipc_ratio(self):
        assert speedup(A15, 1_300_000, A7, 1_300_000, COMPUTE_BOUND) == pytest.approx(1.8)

    def test_cache_sensitive_speedup_up_to_4_5x(self):
        cache_hungry = WorkClass("cache", compute_fraction=0.15, wss_kb=2000)
        s = speedup(A15, 1_300_000, A7, 1_300_000, cache_hungry)
        assert 4.0 < s < 5.0

    def test_low_ilp_slower_on_big_at_min_frequency(self):
        # The paper's three kernels that lose on big @ 0.8GHz vs little @ 1.3.
        branchy = WorkClass("branchy", compute_fraction=0.97, ilp=0.25)
        assert speedup(A15, 800_000, A7, 1_300_000, branchy) < 1.0

    def test_high_ilp_still_faster_on_big_at_min_frequency(self):
        vectorized = WorkClass("vec", compute_fraction=0.98, ilp=0.95)
        assert speedup(A15, 800_000, A7, 1_300_000, vectorized) > 1.0

    def test_speedup_monotonic_in_big_frequency(self):
        speeds = [
            speedup(A15, f, A7, 1_300_000, COMPUTE_BOUND)
            for f in (800_000, 1_300_000, 1_900_000)
        ]
        assert speeds == sorted(speeds)
