"""Tests for the calibrated power model."""

import pytest

from repro.platform.chip import exynos5422
from repro.platform.coretypes import CoreType
from repro.platform.power import CorePowerParams, PowerModel, PowerParams


@pytest.fixture
def chip():
    return exynos5422()


def system_power(chip, core_type, freq_khz, util=1.0):
    pm = chip.power_model
    table = chip.cluster(core_type).opp_table
    core = pm.core_power_mw(core_type, freq_khz, table.voltage_at(freq_khz), util)
    clusters = [
        pm.cluster_power_mw(CoreType.LITTLE, True),
        pm.cluster_power_mw(CoreType.BIG, True),
    ]
    return pm.system_power_mw([core], clusters)


class TestCorePowerParams:
    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError):
            CorePowerParams(static_mw_per_v=-1, dyn_mw_per_v2ghz=100)

    def test_rejects_bad_idle_fraction(self):
        with pytest.raises(ValueError):
            CorePowerParams(10, 100, idle_static_fraction=1.5)


class TestCorePower:
    def test_rejects_bad_busy_fraction(self, chip):
        with pytest.raises(ValueError):
            chip.power_model.core_power_mw(CoreType.LITTLE, 500_000, 0.9, 1.5)

    def test_idle_cheaper_than_busy(self, chip):
        pm = chip.power_model
        idle = pm.core_power_mw(CoreType.BIG, 1_900_000, 1.35, 0.0)
        busy = pm.core_power_mw(CoreType.BIG, 1_900_000, 1.35, 1.0)
        assert idle < busy / 3

    def test_power_linear_in_utilization(self, chip):
        pm = chip.power_model
        p0 = pm.core_power_mw(CoreType.LITTLE, 1_300_000, 1.2, 0.0)
        p5 = pm.core_power_mw(CoreType.LITTLE, 1_300_000, 1.2, 0.5)
        p10 = pm.core_power_mw(CoreType.LITTLE, 1_300_000, 1.2, 1.0)
        assert p5 - p0 == pytest.approx(p10 - p5)

    def test_activity_factor_scales_dynamic_power(self, chip):
        pm = chip.power_model
        base = pm.core_power_mw(CoreType.BIG, 1_300_000, 1.1, 1.0, activity_factor=1.0)
        hot = pm.core_power_mw(CoreType.BIG, 1_300_000, 1.1, 1.0, activity_factor=1.2)
        assert hot > base


class TestPaperCalibration:
    """Power ratios the paper reports for SPEC at full utilization."""

    def test_big_at_equal_frequency_about_2_3x(self, chip):
        little = system_power(chip, CoreType.LITTLE, 1_300_000)
        big = system_power(chip, CoreType.BIG, 1_300_000)
        assert 2.0 < big / little < 2.6

    def test_big_at_min_frequency_about_1_5x(self, chip):
        little = system_power(chip, CoreType.LITTLE, 1_300_000)
        big = system_power(chip, CoreType.BIG, 800_000)
        assert 1.3 < big / little < 1.7

    def test_fig6_slope_steeper_at_high_frequency(self, chip):
        """Figure 6: power is more utilization-sensitive at high clocks."""
        pm = chip.power_model
        table = chip.little_cluster.opp_table
        def slope(freq):
            v = table.voltage_at(freq)
            return (pm.core_power_mw(CoreType.LITTLE, freq, v, 1.0)
                    - pm.core_power_mw(CoreType.LITTLE, freq, v, 0.0))
        assert slope(1_300_000) > 2.0 * slope(500_000)

    def test_fig6_big_little_ranges_separated(self, chip):
        """Figure 6: at any matching utilization, even the slowest big
        core draws more than the fastest little core."""
        for util in (0.25, 0.5, 0.75, 1.0):
            big_min = system_power(chip, CoreType.BIG, 800_000, util=util)
            little_max = system_power(chip, CoreType.LITTLE, 1_300_000, util=util)
            assert big_min > little_max


class TestSystemPower:
    def test_screen_power_added(self):
        params = PowerParams(screen_mw=1000.0)
        pm = PowerModel(params)
        assert pm.system_power_mw([], []) == pytest.approx(1300.0)

    def test_disabled_cluster_draws_nothing(self, chip):
        assert chip.power_model.cluster_power_mw(CoreType.BIG, False) == 0.0
