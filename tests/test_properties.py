"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.efficiency import efficiency_breakdown
from repro.core.tlp import tlp_stats
from repro.core.tlp_matrix import tlp_matrix
from repro.platform.cache import memory_time_factor, miss_ratio
from repro.platform.coretypes import CoreType, cortex_a7, cortex_a15
from repro.platform.opp import linear_voltage_table
from repro.platform.perfmodel import WorkClass, throughput_units_per_sec
from repro.platform.power import PowerModel
from repro.sched.load import LoadTracker
from repro.sim.trace import Trace
from repro.units import LOAD_SCALE

A7, A15 = cortex_a7(), cortex_a15()

work_classes = st.builds(
    WorkClass,
    name=st.just("w"),
    compute_fraction=st.floats(0.05, 1.0),
    wss_kb=st.floats(0.0, 8192.0),
    ilp=st.floats(0.0, 1.0),
    activity_factor=st.floats(0.5, 2.0),
)

little_freqs = st.integers(500_000, 1_300_000)
big_freqs = st.integers(800_000, 1_900_000)


class TestCacheModelProperties:
    @given(l2=st.integers(64, 4096), wss=st.floats(0, 100_000))
    def test_miss_ratio_bounded(self, l2, wss):
        assert 0.0 <= miss_ratio(l2, wss) < 1.0

    @given(l2=st.integers(64, 4096), wss=st.floats(0, 100_000),
           penalty=st.floats(0, 20))
    def test_memory_factor_at_least_one(self, l2, wss, penalty):
        assert memory_time_factor(l2, wss, penalty) >= 1.0

    @given(wss=st.floats(1, 100_000))
    def test_bigger_cache_never_worse(self, wss):
        assert miss_ratio(2048, wss) <= miss_ratio(512, wss)


class TestPerfModelProperties:
    @given(work=work_classes, freq=little_freqs)
    def test_throughput_positive(self, work, freq):
        assert throughput_units_per_sec(A7, freq, work) > 0

    @given(work=work_classes)
    def test_big_never_slower_at_equal_frequency(self, work):
        little = throughput_units_per_sec(A7, 1_300_000, work)
        big = throughput_units_per_sec(A15, 1_300_000, work)
        assert big >= little - 1e-12

    @given(work=work_classes, f1=little_freqs, f2=little_freqs)
    def test_throughput_monotonic_in_frequency(self, work, f1, f2):
        lo, hi = min(f1, f2), max(f1, f2)
        assert (
            throughput_units_per_sec(A7, hi, work)
            >= throughput_units_per_sec(A7, lo, work) - 1e-12
        )

    @given(work=work_classes, freq=little_freqs)
    def test_frequency_scaling_sublinear(self, work, freq):
        """Doubling frequency can at most double throughput."""
        t1 = throughput_units_per_sec(A7, freq, work)
        t2 = throughput_units_per_sec(A7, 2 * freq, work)
        assert t2 <= 2 * t1 * (1 + 1e-9)


class TestPowerModelProperties:
    @given(freq=big_freqs, v=st.floats(0.8, 1.4),
           u1=st.floats(0, 1), u2=st.floats(0, 1))
    def test_power_monotonic_in_utilization(self, freq, v, u1, u2):
        pm = PowerModel()
        lo, hi = min(u1, u2), max(u1, u2)
        p_lo = pm.core_power_mw(CoreType.BIG, freq, v, lo)
        p_hi = pm.core_power_mw(CoreType.BIG, freq, v, hi)
        assert p_hi >= p_lo - 1e-9

    @given(v=st.floats(0.8, 1.4), u=st.floats(0, 1),
           f1=big_freqs, f2=big_freqs)
    def test_power_monotonic_in_frequency(self, v, u, f1, f2):
        pm = PowerModel()
        lo, hi = min(f1, f2), max(f1, f2)
        assert pm.core_power_mw(CoreType.BIG, hi, v, u) >= pm.core_power_mw(
            CoreType.BIG, lo, v, u
        ) - 1e-9

    @given(freq=little_freqs, v=st.floats(0.8, 1.4), u=st.floats(0, 1))
    def test_little_cheaper_than_big_same_point(self, freq, v, u):
        pm = PowerModel()
        assert pm.core_power_mw(CoreType.LITTLE, freq, v, u) <= pm.core_power_mw(
            CoreType.BIG, freq, v, u
        )


class TestOPPTableProperties:
    @given(
        start=st.integers(100_000, 1_000_000),
        steps=st.integers(1, 20),
        step=st.integers(50_000, 200_000),
        query=st.integers(1, 3_000_000),
    )
    def test_ceil_floor_are_valid_points(self, start, steps, step, query):
        table = linear_voltage_table(start, start + steps * step, step, 0.9, 1.3)
        assert table.contains(table.ceil(query))
        assert table.contains(table.floor(query))
        assert table.floor(query) <= table.ceil(query) or query > table.max_khz

    @given(
        start=st.integers(100_000, 1_000_000),
        steps=st.integers(1, 20),
        step=st.integers(50_000, 200_000),
        query=st.integers(100_000, 3_000_000),
    )
    def test_ceil_is_least_upper_point(self, start, steps, step, query):
        table = linear_voltage_table(start, start + steps * step, step, 0.9, 1.3)
        ceil = table.ceil(query)
        if query <= table.max_khz:
            assert ceil >= query
            below = [f for f in table.frequencies_khz if f >= query]
            assert ceil == below[0]


class TestLoadTrackerProperties:
    @given(samples=st.lists(st.floats(0, LOAD_SCALE), min_size=1, max_size=200),
           halflife=st.floats(1.0, 128.0))
    def test_value_stays_in_range(self, samples, halflife):
        tracker = LoadTracker(halflife_ms=halflife)
        for s in samples:
            v = tracker.update(s)
            assert 0.0 <= v <= LOAD_SCALE

    @given(initial=st.floats(0, LOAD_SCALE), ticks=st.integers(0, 1000))
    def test_decay_never_increases(self, initial, ticks):
        tracker = LoadTracker(initial=initial)
        assert tracker.decay(ticks) <= initial + 1e-9

    @given(samples=st.lists(st.floats(0, LOAD_SCALE), min_size=1, max_size=100))
    def test_value_bounded_by_max_sample(self, samples):
        tracker = LoadTracker()
        for s in samples:
            tracker.update(s)
        assert tracker.value <= max(samples) + 1e-9


@st.composite
def activity_traces(draw):
    n_windows = draw(st.integers(1, 30))
    n_little = 4
    n_big = 4
    types = [CoreType.LITTLE] * n_little + [CoreType.BIG] * n_big
    trace = Trace(types, [True] * 8, max_ticks=n_windows * 10)
    for _ in range(n_windows):
        busy = [
            draw(st.sampled_from([0.0, 0.3, 1.0])) for _ in range(n_little + n_big)
        ]
        lf = draw(st.sampled_from([500_000, 900_000, 1_300_000]))
        bf = draw(st.sampled_from([800_000, 1_300_000, 1_900_000]))
        for _ in range(10):
            trace.record(busy, lf, bf, 500.0)
    trace.finalize()
    return trace


class TestAnalysisInvariants:
    @settings(max_examples=30)
    @given(trace=activity_traces())
    def test_matrix_sums_to_100(self, trace):
        assert abs(tlp_matrix(trace).sum() - 100.0) < 1e-6

    @settings(max_examples=30)
    @given(trace=activity_traces())
    def test_efficiency_is_partition(self, trace):
        b = efficiency_breakdown(trace, 500_000, 1_900_000)
        assert abs(sum(b.as_row()) - 100.0) < 1e-6

    @settings(max_examples=30)
    @given(trace=activity_traces())
    def test_tlp_consistent_with_matrix(self, trace):
        """Table III must always be derivable from Table IV."""
        stats = tlp_stats(trace)
        matrix = tlp_matrix(trace)
        idle = matrix[0, 0]
        little = sum(l * matrix[b, l] for b in range(5) for l in range(5))
        big = sum(b * matrix[b, l] for b in range(5) for l in range(5))
        assert math.isclose(stats.idle_pct, idle, abs_tol=1e-6)
        if little + big > 0:
            assert math.isclose(
                stats.tlp, (little + big) / (100.0 - idle), rel_tol=1e-9
            )
            assert math.isclose(
                stats.big_active_pct, 100.0 * big / (little + big), abs_tol=1e-6
            )

    @settings(max_examples=30)
    @given(trace=activity_traces())
    def test_tlp_bounded_by_core_count(self, trace):
        stats = tlp_stats(trace)
        assert 0.0 <= stats.tlp <= 8.0
        assert 0.0 <= stats.idle_pct <= 100.0
