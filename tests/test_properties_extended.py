"""Property-based tests for the newer modules (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.idleness import idle_period_lengths_ms, idleness_profile
from repro.core.timeline import LEVELS, sparkline
from repro.platform.chip import exynos5422
from repro.platform.coretypes import CoreType, cortex_a15
from repro.platform.perfmodel import WorkClass, throughput_units_per_sec
from repro.platform.thermal import ThermalModel, ThermalParams
from repro.sched.load import LoadTracker
from repro.sim.trace import Trace
from repro.experiments.multiseed import seed_stats

BIG_OPPS = exynos5422().big_cluster.opp_table.frequencies_khz


class TestThermalProperties:
    @given(powers=st.lists(st.floats(0, 10_000), min_size=1, max_size=500))
    @settings(max_examples=50)
    def test_cap_always_a_valid_opp(self, powers):
        model = ThermalModel(ThermalParams(), BIG_OPPS)
        for p in powers:
            cap = model.step(p, 0.01)
            assert cap in BIG_OPPS

    @given(power=st.floats(0, 8000))
    @settings(max_examples=30)
    def test_temperature_bounded_by_steady_state(self, power):
        params = ThermalParams(trip_c=10_000, release_c=9_999)
        model = ThermalModel(params, BIG_OPPS)
        steady = params.ambient_c + power / 1000.0 * params.r_thermal_c_per_w
        hi = max(params.ambient_c, steady)
        lo = min(params.ambient_c, steady)
        for _ in range(1000):
            model.step(power, 0.01)
            assert lo - 1e-6 <= model.temperature_c <= hi + 1e-6

    @given(powers=st.lists(st.floats(0, 10_000), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_throttle_events_monotone(self, powers):
        model = ThermalModel(ThermalParams(), BIG_OPPS)
        prev = 0
        for p in powers:
            model.step(p, 0.05)
            assert model.throttle_events >= prev
            prev = model.throttle_events


class TestContentionProperties:
    @given(
        n1=st.integers(0, 16),
        n2=st.integers(0, 16),
        work=st.builds(
            WorkClass,
            name=st.just("w"),
            compute_fraction=st.floats(0.05, 1.0),
            wss_kb=st.floats(0, 4096),
        ),
    )
    def test_more_busy_cores_never_speed_things_up(self, n1, n2, work):
        chip = exynos5422()
        lo, hi = sorted((n1, n2))
        t_lo = throughput_units_per_sec(
            cortex_a15(), 1_900_000, work,
            memory_contention=chip.memory_contention(lo),
        )
        t_hi = throughput_units_per_sec(
            cortex_a15(), 1_900_000, work,
            memory_contention=chip.memory_contention(hi),
        )
        assert t_hi <= t_lo + 1e-12


class TestIdlenessProperties:
    @given(pattern=st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_idle_periods_partition_idle_time(self, pattern):
        trace = Trace([CoreType.LITTLE], [True], max_ticks=len(pattern))
        for busy in pattern:
            trace.record([1.0 if busy else 0.0], 500_000, 800_000, 300.0)
        trace.finalize()
        lengths = idle_period_lengths_ms(trace)
        assert lengths.sum() == sum(1 for b in pattern if not b)
        profile = idleness_profile(trace)
        assert 0.0 <= profile.idle_fraction <= 1.0
        assert 0.0 <= profile.deep_idle_share <= 1.0


class TestSparklineProperties:
    @given(
        values=st.lists(st.floats(0, 100), min_size=1, max_size=500),
        width=st.integers(1, 120),
    )
    @settings(max_examples=50)
    def test_output_width_and_alphabet(self, values, width):
        line = sparkline(np.array(values), width, 0.0, 100.0)
        assert len(line) == width
        assert all(ch in LEVELS for ch in line)


class TestSeedStatsProperties:
    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_mean_within_range_and_std_nonnegative(self, values):
        s = seed_stats(values)
        assert min(values) - 1e-6 <= s.mean <= max(values) + 1e-6
        assert s.std >= 0.0
        assert s.n == len(values)

    @given(value=st.floats(-1e6, 1e6), n=st.integers(2, 20))
    def test_constant_values_zero_std(self, value, n):
        s = seed_stats([value] * n)
        assert math.isclose(s.std, 0.0, abs_tol=1e-6)


class TestLoadTrackerAlgebra:
    @given(
        samples=st.lists(st.floats(0, 1024), min_size=1, max_size=50),
        gap=st.integers(0, 200),
    )
    def test_decay_then_update_equals_zero_updates(self, samples, gap):
        """decay(k) followed by update(s) must equal k zero-updates then s."""
        a = LoadTracker(halflife_ms=32)
        b = LoadTracker(halflife_ms=32)
        for s in samples:
            a.update(s)
            b.update(s)
        a.decay(gap)
        for _ in range(gap):
            b.update(0.0)
        a.update(512.0)
        b.update(512.0)
        assert math.isclose(a.value, b.value, rel_tol=1e-9, abs_tol=1e-9)
