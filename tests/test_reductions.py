"""The reductions registry and the in-worker == parent-side guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.efficiency import EfficiencyBreakdown, efficiency_breakdown
from repro.core.reductions import (
    ReductionContext,
    WARMUP_S,
    compute_reductions,
    decode_reduction,
    get_reduction,
    register_reduction,
    registered_reductions,
)
from repro.core.residency import frequency_residency
from repro.core.study import CharacterizationStudy, run_app
from repro.core.tlp import TLPStats, tlp_stats
from repro.core.tlp_matrix import tlp_matrix
from repro.platform.chip import exynos5422
from repro.platform.coretypes import CoreType
from repro.runner.spec import RunSpec, execute_spec


# -- registry mechanics ------------------------------------------------------


def test_builtin_reductions_registered():
    names = registered_reductions()
    for expected in (
        "tlp", "tlp_matrix", "residency", "efficiency", "power_summary", "fps",
    ):
        assert expected in names


def test_unknown_reduction_raises_with_listing():
    with pytest.raises(KeyError, match="registered"):
        get_reduction("no-such-reduction")


def test_unknown_reduction_in_spec_fails_at_execute():
    spec = RunSpec(
        "video-player", seed=1, max_seconds=2.0,
        reductions=("no-such-reduction",), trace_policy="none",
    )
    with pytest.raises(KeyError):
        execute_spec(spec)


def test_register_custom_reduction_roundtrip():
    register_reduction(
        "test-tick-count",
        compute=lambda ctx: {"ticks": len(ctx.trace)},
        decode=lambda payload: payload["ticks"],
    )
    try:
        spec = RunSpec(
            "video-player", seed=1, max_seconds=2.0,
            reductions=("test-tick-count",), trace_policy="none",
        )
        result = execute_spec(spec)
        assert result.reduction("test-tick-count") == 2000
    finally:
        from repro.core import reductions as mod

        del mod._REGISTRY["test-tick-count"]


def test_reduction_accessor_raises_when_absent():
    spec = RunSpec("video-player", seed=1, max_seconds=2.0, trace_policy="none")
    result = execute_spec(spec)
    with pytest.raises(KeyError, match="carries no"):
        result.reduction("tlp")


def test_context_steady_is_shared_and_trimmed():
    run = run_app("video-player", seed=1, max_seconds=3.0)
    ctx = ReductionContext(run.trace, exynos5422(screen_on=True))
    steady = ctx.steady
    assert steady is ctx.steady  # cached
    assert len(steady) == len(run.trace) - int(WARMUP_S * 1000)


# -- golden equality: in-worker payloads == parent-side recomputation --------


ALL_TRACE_REDUCTIONS = (
    "tlp", "tlp_matrix", "residency", "efficiency", "power_summary", "fps",
)


@pytest.fixture(scope="module")
def worker_and_reference():
    spec = RunSpec(
        "bbench", seed=5, reductions=ALL_TRACE_REDUCTIONS, trace_policy="full",
    )
    result = execute_spec(spec)  # computes reductions, keeps the trace
    return result, result.trace


def test_every_registered_reduction_matches_parent_recompute(worker_and_reference):
    """Payload-decoded values equal a from-scratch parent recomputation."""
    result, trace = worker_and_reference
    chip = exynos5422(screen_on=True)
    steady = trace.trimmed(CharacterizationStudy.WARMUP_S)

    tlp = result.reduction("tlp")
    assert isinstance(tlp, TLPStats)
    assert tlp == tlp_stats(steady)

    matrix = result.reduction("tlp_matrix")
    np.testing.assert_array_equal(matrix, tlp_matrix(steady))

    residency = result.reduction("residency")
    assert residency["little"] == frequency_residency(steady, CoreType.LITTLE)
    assert residency["big"] == frequency_residency(steady, CoreType.BIG)

    efficiency = result.reduction("efficiency")
    assert isinstance(efficiency, EfficiencyBreakdown)
    assert efficiency == efficiency_breakdown(
        steady,
        little_min_khz=chip.little_cluster.opp_table.min_khz,
        big_max_khz=chip.big_cluster.opp_table.max_khz,
    )

    power = result.reduction("power_summary")
    assert power["avg_power_mw"] == float(trace.average_power_mw())
    assert power["energy_mj"] == float(trace.energy_mj())
    assert power["wakeups_per_s"] == float(trace.wakeups_per_second())

    fps = result.reduction("fps")
    assert fps["metric"] == result.metric
    assert fps["latency_s"] == result.latency_s


def test_payloads_survive_json_bit_exactly(worker_and_reference):
    """The cache serializes payloads as JSON; values must round-trip."""
    import json

    result, _ = worker_and_reference
    restored = json.loads(json.dumps(result.reductions))
    for name in ALL_TRACE_REDUCTIONS:
        original = decode_reduction(name, result.reductions[name])
        roundtrip = decode_reduction(name, restored[name])
        if isinstance(original, np.ndarray):
            np.testing.assert_array_equal(original, roundtrip)
        else:
            assert original == roundtrip


def test_compute_reductions_matches_study_characterize():
    """The runner path reproduces CharacterizationStudy bit for bit."""
    study = CharacterizationStudy(seed=5)
    c = study.characterize("video-player")
    payloads = compute_reductions(
        ("tlp", "tlp_matrix", "residency", "efficiency"),
        c.run.trace, study.chip,
    )
    assert decode_reduction("tlp", payloads["tlp"]) == c.tlp
    np.testing.assert_array_equal(
        decode_reduction("tlp_matrix", payloads["tlp_matrix"]), c.matrix
    )
    residency = decode_reduction("residency", payloads["residency"])
    assert residency["little"] == c.little_residency
    assert residency["big"] == c.big_residency
    assert decode_reduction("efficiency", payloads["efficiency"]) == c.efficiency
