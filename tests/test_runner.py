"""Tests for :mod:`repro.runner` — spec hashing, batch execution,
serial/parallel bit-identity, caching, and the fault-tolerance paths."""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

import repro
from repro.platform.chip import exynos5422
from repro.runner import (
    BatchRunner,
    JobTimeout,
    ResultCache,
    RunResult,
    RunSpec,
    execute_spec,
    resolve_kind,
    run_specs,
)
from repro.sched.params import baseline_config, variant_configs

#: A cheap grid: two core configs of one FPS app, 1 s of simulated time.
SMALL_SPECS = [
    RunSpec("video-player", chip="exynos5422", core_config=c, seed=3, max_seconds=1.0)
    for c in ("L4+B4", "L2+B1")
]


# ---------------------------------------------------------------------------
# Custom kinds for the fault-injection tests.  Module-level and addressed
# by dotted path, so pool workers resolve them regardless of start method.
# The spec's ``workload`` field carries the scratch path they key on.
# ---------------------------------------------------------------------------


def _ok_kind(spec: RunSpec) -> RunResult:
    return RunResult(
        spec_key=spec.key(), workload=spec.workload, metric="fps",
        duration_s=0.01, avg_power_mw=100.0, energy_mj=1.0, avg_fps=60.0,
    )


def _crash_once_kind(spec: RunSpec) -> RunResult:
    """Kill the worker process abruptly on the first attempt only."""
    flag = spec.workload
    if not os.path.exists(flag):
        with open(flag, "w") as f:
            f.write("crashed")
        os._exit(3)
    return _ok_kind(spec)


def _always_raise_kind(spec: RunSpec) -> RunResult:
    raise ValueError(f"injected failure for {spec.workload}")


def _sleepy_kind(spec: RunSpec) -> RunResult:
    time.sleep(10.0)
    return _ok_kind(spec)


OK_KIND = f"{__name__}:_ok_kind"
CRASH_ONCE_KIND = f"{__name__}:_crash_once_kind"
RAISE_KIND = f"{__name__}:_always_raise_kind"
SLEEPY_KIND = f"{__name__}:_sleepy_kind"


class TestRunSpec:
    def test_key_is_stable_across_instances(self):
        a = RunSpec("bbench", core_config="L2+B1", seed=4)
        b = RunSpec("bbench", core_config="L2+B1", seed=4)
        assert a.key() == b.key()

    def test_key_distinguishes_every_field(self):
        base = RunSpec("bbench", seed=0)
        variants = [
            RunSpec("browser", seed=0),
            RunSpec("bbench", seed=1),
            RunSpec("bbench", seed=0, core_config="L2"),
            RunSpec("bbench", seed=0, max_seconds=5.0),
            RunSpec("bbench", seed=0, chip="exynos5422"),
            RunSpec("bbench", seed=0, scheduler=variant_configs()[0]),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_inline_chip_is_content_hashed(self):
        a = RunSpec("bbench", chip=exynos5422())
        b = RunSpec("bbench", chip=exynos5422())
        c = RunSpec("bbench", chip=exynos5422(screen_on=True))
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_manifest_is_json_serializable(self):
        spec = RunSpec("bbench", chip=exynos5422(), scheduler=baseline_config())
        json.dumps(spec.manifest(), sort_keys=True)

    def test_label(self):
        spec = RunSpec("bbench", core_config="L2+B1", seed=4)
        assert spec.label() == "bbench/L2+B1/s4"

    def test_unknown_chip_and_kind(self):
        with pytest.raises(KeyError):
            execute_spec(RunSpec("bbench", chip="no-such-chip"))
        with pytest.raises(KeyError):
            resolve_kind("no-such-kind")

    def test_dotted_path_kind_resolves(self):
        result = execute_spec(RunSpec("x", kind=OK_KIND))
        assert result.avg_fps == 60.0


class TestSerialParallelIdentity:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = BatchRunner(workers=1).run(SMALL_SPECS)
        parallel = BatchRunner(workers=2).run(SMALL_SPECS)
        assert serial.succeeded() and parallel.succeeded()
        for a, b in zip(serial.results, parallel.results):
            assert a.scalars() == b.scalars()
            assert np.array_equal(a.trace.busy, b.trace.busy)
            assert np.array_equal(a.trace.power_mw, b.trace.power_mw)

    def test_results_keep_spec_order(self):
        specs = [
            RunSpec("video-player", chip="exynos5422", seed=s, max_seconds=0.3)
            for s in range(5)
        ]
        report = BatchRunner(workers=4).run(specs)
        assert [r.spec_key for r in report.results] == [s.key() for s in specs]

    def test_serial_env_forces_inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_SERIAL", "1")
        report = BatchRunner(workers=8).run(SMALL_SPECS[:1])
        assert report.workers == 1
        assert report.succeeded()

    def test_run_specs_helper(self):
        results = run_specs(SMALL_SPECS[:1], workers=1)
        assert len(results) == 1
        assert results[0].metric == "fps"


class TestCache:
    def test_warm_rerun_executes_zero_simulations(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cold = BatchRunner(workers=1, cache=cache).run(SMALL_SPECS)
        assert cold.cache_hits == 0 and cold.cache_misses == len(SMALL_SPECS)
        warm = BatchRunner(workers=1, cache=cache).run(SMALL_SPECS)
        assert warm.cache_hits == len(SMALL_SPECS) and warm.cache_misses == 0
        assert all(j.status == "cached" for j in warm.jobs)
        for a, b in zip(cold.results, warm.results):
            assert a.scalars() == b.scalars()
            assert np.array_equal(a.trace.busy, b.trace.busy)
            assert np.array_equal(a.trace.power_mw, b.trace.power_mw)

    def test_version_bump_invalidates(self, tmp_path):
        spec = SMALL_SPECS[0]
        old = ResultCache(root=str(tmp_path), version="1.0.0")
        BatchRunner(workers=1, cache=old).run([spec])
        assert old.contains(spec)
        new = ResultCache(root=str(tmp_path), version="1.0.1")
        assert not new.contains(spec)
        assert new.load(spec) is None

    def test_default_version_is_package_version(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        assert cache.version == repro.__version__
        spec = SMALL_SPECS[0]
        BatchRunner(workers=1, cache=cache).run([spec])
        assert os.path.isdir(tmp_path / repro.__version__ / spec.key())

    def test_traceless_result_round_trips(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = RunSpec("x", kind=OK_KIND)
        cache.store(spec, _ok_kind(spec))
        loaded = cache.load(spec)
        assert loaded is not None
        assert loaded.trace is None
        assert loaded.avg_fps == 60.0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = SMALL_SPECS[0]
        cache.store(spec, execute_spec(spec))
        with open(os.path.join(cache.entry_dir(spec), "result.json"), "w") as f:
            f.write("{not json")
        assert cache.load(spec) is None

    def test_corrupt_entry_is_evicted_and_counted(
        self, tmp_path, caplog, monkeypatch
    ):
        import logging

        from repro.obs.metrics import global_metrics, reset_global_metrics

        # A CLI test running earlier may have called setup_logging(),
        # which sets propagate=False on the "repro" logger — re-enable
        # propagation so caplog's root handler sees the warning.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        reset_global_metrics()
        cache = ResultCache(root=str(tmp_path))
        spec = SMALL_SPECS[0]
        cache.store(spec, execute_spec(spec))
        with open(os.path.join(cache.entry_dir(spec), "result.json"), "w") as f:
            f.write("{not json")
        with caplog.at_level("WARNING", logger="repro.runner.cache"):
            assert cache.load(spec) is None
        assert not os.path.isdir(cache.entry_dir(spec))
        assert global_metrics().counter("cache.corrupt").value == 1
        assert any("corrupt" in r.message for r in caplog.records)
        # The eviction cleared the bad bytes: a re-store then hits.
        cache.store(spec, execute_spec(spec))
        assert cache.load(spec) is not None

    def test_truncated_rle_trace_is_evicted(self, tmp_path):
        from repro.obs.metrics import global_metrics, reset_global_metrics

        reset_global_metrics()
        cache = ResultCache(root=str(tmp_path))
        spec = RunSpec(
            "video-player", chip="exynos5422", seed=3, max_seconds=1.0,
            trace_policy="rle",
        )
        cache.store(spec, execute_spec(spec))
        rle_path = os.path.join(cache.entry_dir(spec), "trace.rle")
        size = os.path.getsize(rle_path)
        with open(rle_path, "r+b") as f:
            f.truncate(size // 2)
        assert cache.load(spec) is None
        assert not os.path.isdir(cache.entry_dir(spec))
        assert global_metrics().counter("cache.corrupt").value == 1

    def test_missing_entry_is_plain_miss_not_corrupt(self, tmp_path):
        from repro.obs.metrics import global_metrics, reset_global_metrics

        reset_global_metrics()
        cache = ResultCache(root=str(tmp_path))
        assert cache.load(SMALL_SPECS[0]) is None
        assert global_metrics().counter("cache.corrupt").value == 0
        assert global_metrics().counter("cache.misses").value == 1

    def test_pyproject_reads_version_from_package(self):
        # Satellite guard: the cache keys on repro.__version__, so the
        # package metadata must be derived from it, not hardcoded.
        root = os.path.join(os.path.dirname(__file__), "..")
        with open(os.path.join(root, "pyproject.toml")) as f:
            text = f.read()
        assert 'dynamic = ["version"]' in text
        assert 'attr = "repro.__version__"' in text
        assert 'version = "1.' not in text


class TestFaultTolerance:
    def test_worker_crash_is_retried(self, tmp_path):
        flag = str(tmp_path / "crash-flag")
        specs = [
            RunSpec(flag, kind=CRASH_ONCE_KIND),
            RunSpec("other", kind=OK_KIND),
        ]
        report = BatchRunner(workers=2, retries=2).run(specs)
        assert report.succeeded()
        crash_job = report.jobs[0]
        assert crash_job.status == "ok"
        assert crash_job.attempts >= 2
        assert report.results[1].avg_fps == 60.0

    def test_poison_job_fails_without_aborting_batch(self):
        specs = [
            RunSpec("poison", kind=RAISE_KIND),
            RunSpec("fine", kind=OK_KIND),
        ]
        report = BatchRunner(workers=2, retries=1).run(specs)
        assert not report.succeeded()
        assert report.jobs[0].status == "failed"
        assert report.jobs[0].attempts == 2  # initial + one retry
        assert "injected failure" in report.jobs[0].error
        assert report.jobs[1].status == "ok"
        assert report.results[0] is None
        with pytest.raises(RuntimeError, match="injected failure"):
            report.raise_on_failure()

    def test_timeout_serial(self):
        report = BatchRunner(workers=1, timeout_s=0.2, retries=0).run(
            [RunSpec("slow", kind=SLEEPY_KIND)]
        )
        assert report.jobs[0].status == "timeout"
        assert report.jobs[0].duration_s < 5.0

    def test_timeout_parallel(self):
        specs = [
            RunSpec("slow", kind=SLEEPY_KIND),
            RunSpec("fine", kind=OK_KIND),
        ]
        report = BatchRunner(workers=2, timeout_s=0.2, retries=0).run(specs)
        assert report.jobs[0].status == "timeout"
        assert report.jobs[1].status == "ok"

    def test_timeout_exception_type(self):
        from repro.runner.batch import _execute_job

        with pytest.raises(JobTimeout):
            _execute_job(RunSpec("slow", kind=SLEEPY_KIND), timeout_s=0.1)


class TestObservability:
    def test_event_stream_and_jsonl_log(self, tmp_path):
        log = tmp_path / "run.jsonl"
        seen = []
        runner = BatchRunner(
            workers=1, cache=ResultCache(root=str(tmp_path / "cache")),
            on_event=seen.append, log_path=str(log),
        )
        runner.run(SMALL_SPECS[:1])
        runner.run(SMALL_SPECS[:1])  # warm: emits cache_hit
        kinds = [e.event for e in seen]
        assert kinds.count("batch_start") == 2
        assert kinds.count("batch_done") == 2
        assert kinds.count("job_done") == 1
        assert kinds.count("cache_hit") == 1
        with open(log) as f:
            lines = [json.loads(line) for line in f]
        assert len(lines) == len(seen)
        done = [e for e in lines if e["event"] == "batch_done"]
        assert done[1]["extra"]["cache_hits"] == 1

    def test_report_render_and_throughput(self):
        report = BatchRunner(workers=1).run(SMALL_SPECS[:1])
        text = report.render()
        assert "Batch: 1/1 ok" in text
        assert "video-player/L4+B4/s3" in text
        assert report.throughput_jobs_per_s() > 0

    def test_retry_events_emitted(self):
        seen = []
        BatchRunner(workers=1, retries=1, on_event=seen.append).run(
            [RunSpec("poison", kind=RAISE_KIND)]
        )
        kinds = [e.event for e in seen]
        assert "job_retry" in kinds and "job_failed" in kinds


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError):
            BatchRunner(workers=0)

    def test_bad_retries(self):
        with pytest.raises(ValueError):
            BatchRunner(retries=-1)

    def test_run_one_raises_on_failure(self):
        with pytest.raises(RuntimeError):
            BatchRunner(workers=1, retries=0).run_one(
                RunSpec("poison", kind=RAISE_KIND)
            )
