"""Tests for :mod:`repro.runner.events` — RunnerEvent JSON and EventSink."""

from __future__ import annotations

import json

from repro.runner.events import EventSink, RunnerEvent


class TestRunnerEventToJson:
    def test_unset_fields_are_dropped(self):
        record = RunnerEvent(event="batch_start", t_s=0.0)
        payload = json.loads(record.to_json())
        assert payload == {"event": "batch_start", "t_s": 0.0}

    def test_falsy_but_set_values_survive(self):
        """Regression: ``v not in (None, {})`` dropped 0 / 0.0 / "" via
        __eq__ against {} and None; filtering must be identity-based."""
        record = RunnerEvent(
            event="job_done", t_s=0.0, index=0, attempt=0,
            duration_s=0.0, error="",
        )
        payload = json.loads(record.to_json())
        assert payload["index"] == 0
        assert payload["attempt"] == 0
        assert payload["duration_s"] == 0.0
        assert payload["error"] == ""

    def test_empty_extra_elided_nonempty_kept(self):
        empty = json.loads(RunnerEvent(event="e", t_s=1.0).to_json())
        assert "extra" not in empty
        full = json.loads(
            RunnerEvent(event="e", t_s=1.0, extra={"n": 0}).to_json()
        )
        assert full["extra"] == {"n": 0}

    def test_json_is_sorted_and_single_line(self):
        text = RunnerEvent(
            event="job_done", t_s=2.5, index=3, spec_key="abc",
            label="bbench", status="ok",
        ).to_json()
        assert "\n" not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)


class TestEventSink:
    def test_jsonl_log_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventSink(log_path=str(path)) as sink:
            sink.emit("batch_start", extra={"n_jobs": 2})
            sink.emit("job_done", index=0, status="ok")
            sink.emit("batch_done", extra={"ok": 2})
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert [p["event"] for p in parsed] == [
            "batch_start", "job_done", "batch_done",
        ]
        assert all(p["t_s"] >= 0 for p in parsed)

    def test_log_appends_across_sinks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for _ in range(2):
            with EventSink(log_path=str(path)) as sink:
                sink.emit("batch_start")
        assert len(path.read_text().splitlines()) == 2

    def test_callback_exception_is_isolated(self, tmp_path, caplog, monkeypatch):
        path = tmp_path / "run.jsonl"

        def explode(record):
            raise RuntimeError("broken progress bar")

        # An earlier CLI test may have configured the non-propagating
        # `repro` handler; caplog needs records to reach the root logger.
        import logging

        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level("ERROR", logger="repro.runner.events"):
            with EventSink(callback=explode, log_path=str(path)) as sink:
                record = sink.emit("job_done", index=0)
        assert record.event == "job_done"
        # The JSONL line is still written and the failure is logged.
        assert len(path.read_text().splitlines()) == 1
        assert any("event callback failed" in r.message for r in caplog.records)

    def test_callback_sees_every_event_in_order(self):
        seen = []
        with EventSink(callback=lambda r: seen.append(r.event)) as sink:
            for name in ("batch_start", "cache_hit", "job_done", "batch_done"):
                sink.emit(name)
        assert seen == ["batch_start", "cache_hit", "job_done", "batch_done"]

    def test_no_log_path_is_fine(self):
        with EventSink() as sink:
            record = sink.emit("batch_start")
        assert record.t_s >= 0


class TestBatchRunnerEventStream:
    """End-to-end: the parallel runner's event stream is complete and
    ordered, and callback crashes don't lose log lines."""

    def _specs(self, n=3):
        from repro.runner.spec import RunSpec

        # Module-path kinds resolve inside worker processes too.
        return [
            RunSpec(
                f"ok-{i}", kind=f"{__name__}:_ok_kind", seed=i,
                max_seconds=0.01,
            )
            for i in range(n)
        ]

    def test_event_stream_complete_under_parallel_executor(self, tmp_path):
        from repro.runner.batch import BatchRunner

        path = tmp_path / "run.jsonl"
        events = []
        runner = BatchRunner(
            workers=2, cache=None,
            on_event=events.append, log_path=str(path),
        )
        report = runner.run(self._specs())
        assert report.ok_count == 3
        names = [e.event for e in events]
        assert names[0] == "batch_start"
        assert names[-1] == "batch_done"
        per_job = [e for e in events if e.event in ("job_done", "cache_hit")]
        assert len(per_job) == 3
        assert sorted(e.index for e in per_job) == [0, 1, 2]
        logged = [json.loads(line) for line in path.read_text().splitlines()]
        assert [d["event"] for d in logged] == names

    def test_crashing_callback_keeps_full_jsonl(self, tmp_path):
        from repro.runner.batch import BatchRunner

        path = tmp_path / "run.jsonl"

        def explode(record):
            raise ValueError("boom")

        runner = BatchRunner(
            workers=2, cache=None,
            on_event=explode, log_path=str(path),
        )
        report = runner.run(self._specs())
        assert report.ok_count == 3
        logged = [json.loads(line) for line in path.read_text().splitlines()]
        assert logged[0]["event"] == "batch_start"
        assert logged[-1]["event"] == "batch_done"
        assert sum(1 for d in logged if d["event"] == "job_done") == 3


def _ok_kind(spec):
    from repro.runner.spec import RunResult

    return RunResult(
        spec_key=spec.key(), workload=spec.workload, metric="fps",
        duration_s=0.01, avg_power_mw=100.0, energy_mj=1.0, avg_fps=60.0,
    )
