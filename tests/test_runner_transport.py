"""Trace policies through the batch runner: transport, metrics, SIGALRM."""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.obs.metrics import global_metrics, reset_global_metrics
from repro.runner.batch import BatchRunner, JobTimeout, _execute_job
from repro.runner.cache import ResultCache
from repro.runner.spec import RunSpec, execute_spec
from repro.sim.traceio import LazyTrace


APP = "video-player"
SECONDS = 2.0
REDUCTIONS = ("tlp", "power_summary")


def spec_for(policy: str, **overrides) -> RunSpec:
    kwargs = dict(
        seed=3, max_seconds=SECONDS, reductions=REDUCTIONS, trace_policy=policy,
    )
    kwargs.update(overrides)
    return RunSpec(APP, **kwargs)


@pytest.fixture(scope="module")
def full_result():
    return execute_spec(spec_for("full"))


def assert_trace_matches(trace, reference) -> None:
    from repro.platform.coretypes import CoreType

    assert len(trace) == len(reference)
    np.testing.assert_array_equal(trace.busy, reference.busy)
    np.testing.assert_array_equal(trace.power_mw, reference.power_mw)
    for ct in (CoreType.LITTLE, CoreType.BIG):
        np.testing.assert_array_equal(trace.freq_khz(ct), reference.freq_khz(ct))


# -- policy semantics at the execute_spec level ------------------------------


def test_policy_none_drops_trace_keeps_reductions(full_result):
    result = execute_spec(spec_for("none"))
    assert result.trace is None
    assert result.transport_nbytes() == 0
    assert result.reduction("tlp") == full_result.reduction("tlp")
    assert result.reduction("power_summary") == full_result.reduction(
        "power_summary"
    )


def test_policy_rle_is_lazy_and_bit_exact(full_result):
    result = execute_spec(spec_for("rle"))
    assert isinstance(result.trace, LazyTrace)
    assert not result.trace.inflated
    assert 0 < result.transport_nbytes() < full_result.trace.nbytes
    assert_trace_matches(result.trace.materialize(), full_result.trace)


def test_policy_shm_only_inside_pool(full_result):
    # Outside a worker, "shm" degrades to the plain dense trace.
    result = execute_spec(spec_for("shm"), in_pool=False)
    assert_trace_matches(result.trace, full_result.trace)


# -- batch runner: serial and parallel, with transport accounting ------------


@pytest.mark.parametrize("workers", [1, 2])
def test_batch_policies_bit_identical(tmp_path, full_result, workers):
    reset_global_metrics()
    runner = BatchRunner(
        workers=workers, cache=ResultCache(root=tmp_path / f"c{workers}")
    )
    report = runner.run([
        spec_for("full", seed=4),
        spec_for("rle", seed=4),
        spec_for("none", seed=4),
        spec_for("shm", seed=4),
    ])
    report.raise_on_failure()
    full, rle, none, shm = report.results

    assert_trace_matches(rle.trace, full.trace)
    assert none.trace is None
    # shm arrives as a handle in the parallel path and is rehydrated by
    # the runner; serially it is already dense.
    assert_trace_matches(shm.trace, full.trace)
    for result in (rle, none, shm):
        assert result.reduction("tlp") == full.reduction("tlp")

    if workers > 1:
        # rle + full both cross the pool with payloads; none is free.
        assert report.transport_bytes > 0
        assert report.shm_bytes > 0
        snap = global_metrics().snapshot()
        assert snap.counter("runner.transport.results") == 4
        assert snap.counter("runner.transport.bytes") == report.transport_bytes
        assert snap.counter("runner.shm.bytes") == report.shm_bytes
    else:
        assert report.transport_bytes == 0
        assert report.shm_bytes == 0


def test_rle_cache_roundtrip_stays_lazy(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    spec = spec_for("rle", seed=6)
    runner = BatchRunner(workers=1, cache=cache)
    cold = runner.run([spec])
    cold.raise_on_failure()
    assert cache.stats.misses == 1 and cache.stats.entries_written == 1

    warm = runner.run([spec])
    warm.raise_on_failure()
    assert cache.stats.hits == 1
    cached = warm.results[0]
    assert isinstance(cached.trace, LazyTrace)
    assert not cached.trace.inflated  # hit-load never inflates eagerly
    assert_trace_matches(
        cached.trace.materialize(), cold.results[0].trace.materialize()
    )
    assert cached.reduction("tlp") == cold.results[0].reduction("tlp")


# -- SIGALRM hygiene (regression: handler leak / dangling itimer) ------------


requires_sigalrm = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
)


@pytest.fixture()
def sentinel_handler():
    """Install a recognisable handler so restoration is observable."""
    def sentinel(signum, frame):  # pragma: no cover
        raise AssertionError("sentinel alarm fired")

    previous = signal.signal(signal.SIGALRM, sentinel)
    yield sentinel
    signal.signal(signal.SIGALRM, previous)
    signal.setitimer(signal.ITIMER_REAL, 0.0)


def assert_alarm_state_clean(sentinel) -> None:
    assert signal.getsignal(signal.SIGALRM) is sentinel
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


@requires_sigalrm
def test_alarm_restored_after_success(sentinel_handler):
    result = _execute_job(spec_for("none"), timeout_s=60.0)
    assert result.reductions
    assert_alarm_state_clean(sentinel_handler)


@requires_sigalrm
def test_alarm_restored_after_job_exception(sentinel_handler):
    bad = RunSpec(
        APP, seed=3, max_seconds=SECONDS,
        reductions=("no-such-reduction",), trace_policy="none",
    )
    with pytest.raises(KeyError):
        _execute_job(bad, timeout_s=60.0)
    assert_alarm_state_clean(sentinel_handler)


@requires_sigalrm
def test_alarm_restored_after_timeout(sentinel_handler):
    with pytest.raises(JobTimeout):
        _execute_job(spec_for("full", max_seconds=60.0), timeout_s=0.05)
    assert_alarm_state_clean(sentinel_handler)


@requires_sigalrm
def test_no_alarm_armed_without_timeout(sentinel_handler):
    _execute_job(spec_for("none"), timeout_s=None)
    assert_alarm_state_clean(sentinel_handler)
