"""Tests for the interactive frequency governor (paper Algorithm 2)."""

import pytest

from repro.platform.coretypes import CoreType, cortex_a7
from repro.platform.opp import little_opp_table
from repro.sched.governor import (
    ClusterFreqDomain,
    FixedFrequencyGovernor,
    InteractiveGovernor,
    PerformanceGovernor,
)
from repro.sched.params import GovernorParams
from repro.sim.core import SimCore

TICK_S = 0.001


def make_domain(n_cores=2):
    table = little_opp_table()
    cores = [
        SimCore(i, cortex_a7(), enabled=True, max_freq_khz=table.max_khz)
        for i in range(n_cores)
    ]
    return ClusterFreqDomain(CoreType.LITTLE, table, cores), cores


def feed(governor, domain, cores, busy_fraction, ticks):
    """Advance ``ticks``, reporting ``busy_fraction`` on core 0."""
    for t in range(ticks):
        cores[0].busy_in_window_s += busy_fraction * TICK_S
        governor.tick(domain, t, TICK_S)


class TestClusterFreqDomain:
    def test_applies_frequency_to_cores(self):
        domain, cores = make_domain()
        domain.set_freq(1_000_000)
        assert all(c.freq_khz == 1_000_000 for c in cores)

    def test_rejects_non_opp(self):
        domain, _ = make_domain()
        with pytest.raises(ValueError):
            domain.set_freq(999_999)

    def test_voltage_tracks_frequency(self):
        domain, _ = make_domain()
        v_min = domain.voltage_v()
        domain.set_freq(1_300_000)
        assert domain.voltage_v() > v_min


class TestInteractiveGovernor:
    def test_starts_at_min(self):
        domain, _ = make_domain()
        gov = InteractiveGovernor(GovernorParams())
        gov.start(domain)
        assert domain.freq_khz == domain.opp_table.min_khz

    def test_no_decision_before_sampling_period(self):
        domain, cores = make_domain()
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20))
        gov.start(domain)
        feed(gov, domain, cores, 1.0, ticks=19)
        assert domain.freq_khz == domain.opp_table.min_khz

    def test_hispeed_jump_on_high_load(self):
        domain, cores = make_domain()
        params = GovernorParams(sampling_ms=20)
        gov = InteractiveGovernor(params)
        gov.start(domain)
        feed(gov, domain, cores, 1.0, ticks=20)
        assert domain.freq_khz == gov.hispeed_khz(domain)

    def test_scales_above_hispeed_when_still_loaded(self):
        domain, cores = make_domain()
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20))
        gov.start(domain)
        feed(gov, domain, cores, 1.0, ticks=40)
        assert domain.freq_khz == domain.opp_table.max_khz

    def test_holds_frequency_in_dead_band(self):
        domain, cores = make_domain()
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20))
        gov.start(domain)
        domain.set_freq(1_000_000)
        feed(gov, domain, cores, 0.5, ticks=20)  # between down (0.35) and target (0.70)
        assert domain.freq_khz == 1_000_000

    def test_scales_down_on_low_load(self):
        domain, cores = make_domain()
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20))
        gov.start(domain)
        domain.set_freq(1_300_000)
        # Enough samples to pass the 80ms min-sample-time hold.
        feed(gov, domain, cores, 0.1, ticks=120)
        assert domain.freq_khz < 1_300_000

    def test_idle_falls_to_min(self):
        domain, cores = make_domain()
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20))
        gov.start(domain)
        domain.set_freq(1_300_000)
        feed(gov, domain, cores, 0.0, ticks=120)
        assert domain.freq_khz == domain.opp_table.min_khz

    def test_hold_delays_downscale(self):
        """min_sample_time: a just-raised frequency resists downscaling."""
        domain, cores = make_domain()
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20, hold_ms=80))
        gov.start(domain)
        feed(gov, domain, cores, 1.0, ticks=20)  # burst -> hispeed raise
        raised = domain.freq_khz
        assert raised > domain.opp_table.min_khz
        feed(gov, domain, cores, 0.0, ticks=40)  # idle, but inside hold
        assert domain.freq_khz == raised
        feed(gov, domain, cores, 0.0, ticks=80)  # hold expired
        assert domain.freq_khz == domain.opp_table.min_khz

    def test_hispeed_can_be_disabled(self):
        domain, cores = make_domain()
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20, hispeed_enabled=False))
        gov.start(domain)
        feed(gov, domain, cores, 1.0, ticks=20)
        # Without the jump the first raise is proportional from min.
        assert domain.freq_khz < gov.hispeed_khz(domain)
        assert domain.freq_khz > domain.opp_table.min_khz

    def test_cluster_util_is_max_over_cores(self):
        domain, cores = make_domain(n_cores=2)
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20))
        gov.start(domain)
        # Busy on core 1 only must still drive the shared frequency.
        for t in range(20):
            cores[1].busy_in_window_s += 1.0 * TICK_S
            gov.tick(domain, t, TICK_S)
        assert domain.freq_khz > domain.opp_table.min_khz

    def test_longer_interval_reacts_slower(self):
        for sampling, expect_raised in ((20, True), (100, False)):
            domain, cores = make_domain()
            gov = InteractiveGovernor(GovernorParams(sampling_ms=sampling))
            gov.start(domain)
            feed(gov, domain, cores, 1.0, ticks=50)
            raised = domain.freq_khz > domain.opp_table.min_khz
            assert raised is expect_raised

    def test_window_resets_after_sample(self):
        domain, cores = make_domain()
        gov = InteractiveGovernor(GovernorParams(sampling_ms=20))
        gov.start(domain)
        feed(gov, domain, cores, 1.0, ticks=20)
        assert cores[0].busy_in_window_s == 0.0


class TestFixedGovernors:
    def test_performance_pins_max(self):
        domain, _ = make_domain()
        gov = PerformanceGovernor()
        gov.start(domain)
        assert domain.freq_khz == domain.opp_table.max_khz
        gov.tick(domain, 0, TICK_S)
        assert domain.freq_khz == domain.opp_table.max_khz

    def test_fixed_snaps_to_opp(self):
        domain, _ = make_domain()
        gov = FixedFrequencyGovernor(950_000)
        gov.start(domain)
        assert domain.freq_khz == 1_000_000
