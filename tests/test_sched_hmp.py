"""Tests for the HMP migration scheduler and intra-cluster balancing."""

import pytest

from repro.platform.coretypes import cortex_a7, cortex_a15
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.sched.balance import balance_cluster, least_loaded, most_loaded
from repro.sched.hmp import HMPScheduler
from repro.sched.load import LoadTracker
from repro.sched.params import HMPParams
from repro.sim.core import SimCore
from repro.sim.task import Task, TaskState


def make_cores(n_little=2, n_big=2, enabled_little=None, enabled_big=None):
    cores = []
    for i in range(n_little):
        on = enabled_little[i] if enabled_little else True
        cores.append(SimCore(i, cortex_a7(), enabled=on, max_freq_khz=1_300_000))
    for i in range(n_big):
        on = enabled_big[i] if enabled_big else True
        cores.append(SimCore(n_little + i, cortex_a15(), enabled=on, max_freq_khz=1_900_000))
    return cores


def make_task(name="t", load=0.0):
    def behavior(ctx):
        yield  # pragma: no cover - never executed in these unit tests

    task = Task(name, behavior, COMPUTE_BOUND)
    task.load = LoadTracker(initial=load)
    task.state = TaskState.RUNNABLE
    return task


class TestWakePlacement:
    def test_low_load_goes_little(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        core = hmp.place_wakeup(make_task(load=100.0))
        assert core.core_type.value == "little"

    def test_high_load_goes_big(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        core = hmp.place_wakeup(make_task(load=900.0))
        assert core.core_type.value == "big"

    def test_high_load_without_big_cores_goes_little(self):
        cores = make_cores(enabled_big=[False, False])
        hmp = HMPScheduler(cores, HMPParams())
        core = hmp.place_wakeup(make_task(load=900.0))
        assert core.core_type.value == "little"

    def test_big_only_platform_places_everything_big(self):
        cores = make_cores(enabled_little=[False, False])
        hmp = HMPScheduler(cores, HMPParams())
        core = hmp.place_wakeup(make_task(load=10.0))
        assert core.core_type.value == "big"

    def test_prefers_previous_core_when_idle(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        task = make_task(load=100.0)
        task.last_core_id = 1
        assert hmp.place_wakeup(task).core_id == 1

    def test_ignores_previous_core_when_busy(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        cores[1].enqueue(make_task("occupant"))
        task = make_task(load=100.0)
        task.last_core_id = 1
        assert hmp.place_wakeup(task).core_id != 1

    def test_ignores_previous_core_of_wrong_cluster(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        task = make_task(load=900.0)  # must go big
        task.last_core_id = 0  # a little core
        assert hmp.place_wakeup(task).core_type.value == "big"

    def test_requires_some_core(self):
        cores = make_cores(enabled_little=[False, False], enabled_big=[False, False])
        with pytest.raises(ValueError):
            HMPScheduler(cores, HMPParams())


class TestMigration:
    def test_up_migration_over_threshold(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        task = make_task(load=800.0)
        cores[0].enqueue(task)
        moved = hmp.tick(cores)
        assert moved == 1
        assert task.core_id in (2, 3)
        assert task.migrations == 1

    def test_no_up_migration_below_threshold(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        task = make_task(load=650.0)
        cores[0].enqueue(task)
        assert hmp.tick(cores) == 0
        assert task.core_id == 0

    def test_down_migration_below_threshold(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        task = make_task(load=100.0)
        cores[2].enqueue(task)
        assert hmp.tick(cores) == 1
        assert task.core_id in (0, 1)

    def test_no_down_migration_in_band(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        task = make_task(load=500.0)
        cores[2].enqueue(task)
        assert hmp.tick(cores) == 0
        assert task.core_id == 2

    def test_thresholds_respected(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams(up_threshold=550, down_threshold=100))
        task = make_task(load=600.0)  # above the aggressive up-threshold
        cores[0].enqueue(task)
        assert hmp.tick(cores) == 1

    def test_sleeping_tasks_not_migrated(self):
        cores = make_cores()
        hmp = HMPScheduler(cores, HMPParams())
        task = make_task(load=900.0)
        cores[0].enqueue(task)
        task.state = TaskState.SLEEPING
        assert hmp.tick(cores) == 0

    def test_big_stays_when_no_little_enabled(self):
        cores = make_cores(enabled_little=[False, False])
        hmp = HMPScheduler(cores, HMPParams())
        task = make_task(load=10.0)
        cores[2].enqueue(task)
        assert hmp.tick(cores) == 0
        assert task.core_id == 2


class TestBalance:
    def test_least_and_most_loaded(self):
        cores = make_cores(n_little=3, n_big=0)
        cores[1].enqueue(make_task("a"))
        cores[1].enqueue(make_task("b"))
        assert least_loaded(cores).core_id in (0, 2)
        assert most_loaded(cores).core_id == 1

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            least_loaded([])
        with pytest.raises(ValueError):
            most_loaded([])

    def test_balance_moves_excess(self):
        cores = make_cores(n_little=2, n_big=0)
        for i in range(4):
            cores[0].enqueue(make_task(f"t{i}"))
        moves = balance_cluster(cores)
        assert moves == 2
        assert cores[0].nr_running() == 2
        assert cores[1].nr_running() == 2

    def test_balance_leaves_near_equal_queues(self):
        cores = make_cores(n_little=2, n_big=0)
        cores[0].enqueue(make_task("a"))
        cores[1].enqueue(make_task("b"))
        assert balance_cluster(cores) == 0

    def test_balance_single_core_noop(self):
        cores = make_cores(n_little=1, n_big=0)
        cores[0].enqueue(make_task("a"))
        assert balance_cluster(cores) == 0

    def test_balance_moves_lightest_task(self):
        cores = make_cores(n_little=2, n_big=0)
        heavy = make_task("heavy", load=800.0)
        light = make_task("light", load=50.0)
        mid = make_task("mid", load=400.0)
        for t in (heavy, light, mid):
            cores[0].enqueue(t)
        balance_cluster(cores)
        assert light.core_id == 1
        assert heavy.core_id == 0

    def test_max_moves_bound(self):
        cores = make_cores(n_little=2, n_big=0)
        for i in range(40):
            cores[0].enqueue(make_task(f"t{i}"))
        assert balance_cluster(cores, max_moves=5) == 5
