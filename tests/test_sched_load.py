"""Tests for the geometric load tracker (paper Algorithm 1 core)."""

import pytest

from repro.sched.load import LoadTracker, decay_per_tick
from repro.units import LOAD_SCALE


class TestDecayFactor:
    def test_halflife_semantics(self):
        # After exactly one half-life of ticks the weight is 50%.
        d = decay_per_tick(32.0)
        assert d**32 == pytest.approx(0.5)

    def test_rejects_nonpositive_halflife(self):
        with pytest.raises(ValueError):
            decay_per_tick(0.0)


class TestLoadTracker:
    def test_converges_to_constant_sample(self):
        tracker = LoadTracker(halflife_ms=32)
        for _ in range(500):
            tracker.update(700.0)
        assert tracker.value == pytest.approx(700.0, abs=0.5)

    def test_paper_weighting_32ms_ago_counts_half(self):
        """A 1ms load from 32ms ago is weighted 50% relative to now."""
        tracker = LoadTracker(halflife_ms=32)
        tracker.update(LOAD_SCALE)
        peak = tracker.value
        for _ in range(32):
            tracker.update(0.0)
        assert tracker.value == pytest.approx(peak * 0.5, rel=1e-6)

    def test_double_weight_decays_slower(self):
        # Saturate both trackers, then let them age: the longer
        # half-life (the paper's "2x history weight") retains more.
        fast = LoadTracker(halflife_ms=16, initial=float(LOAD_SCALE))
        slow = LoadTracker(halflife_ms=64, initial=float(LOAD_SCALE))
        fast.decay(16)
        slow.decay(16)
        assert fast.value == pytest.approx(LOAD_SCALE / 2)
        assert fast.value < slow.value

    def test_shorter_halflife_reacts_faster(self):
        fast = LoadTracker(halflife_ms=16)
        slow = LoadTracker(halflife_ms=64)
        for _ in range(8):
            fast.update(LOAD_SCALE)
            slow.update(LOAD_SCALE)
        assert fast.value > slow.value

    def test_sleep_decay_matches_explicit_zero_samples(self):
        """decay(k) equals k updates of 0 (no-sample aging)."""
        a = LoadTracker(halflife_ms=32, initial=800.0)
        b = LoadTracker(halflife_ms=32, initial=800.0)
        a.decay(50)
        for _ in range(50):
            b.update(0.0)
        assert a.value == pytest.approx(b.value)

    def test_duty_cycle_convergence(self):
        """A task busy 30% of the time converges to ~30% load — the
        property that makes utilization-based scheduling work."""
        tracker = LoadTracker(halflife_ms=32)
        for _ in range(300):  # 300 cycles of 3ms busy / 7ms sleep
            for _ in range(3):
                tracker.update(LOAD_SCALE)
            tracker.decay(7)
        assert tracker.value / LOAD_SCALE == pytest.approx(0.3, abs=0.12)

    def test_bounds_enforced(self):
        tracker = LoadTracker()
        with pytest.raises(ValueError):
            tracker.update(-1.0)
        with pytest.raises(ValueError):
            tracker.update(LOAD_SCALE + 1)
        with pytest.raises(ValueError):
            tracker.decay(-1)
        with pytest.raises(ValueError):
            LoadTracker(initial=2000.0)

    def test_reset(self):
        tracker = LoadTracker(initial=500.0)
        tracker.reset(100.0)
        assert tracker.value == 100.0

    def test_value_never_exceeds_scale(self):
        tracker = LoadTracker()
        for _ in range(1000):
            tracker.update(LOAD_SCALE)
        assert tracker.value <= LOAD_SCALE


class TestAdvance:
    """``advance`` is the fast-forward twin of repeated ``update``."""

    @pytest.mark.parametrize("sample", [0.0, 137.5, 700.0, float(LOAD_SCALE)])
    @pytest.mark.parametrize("ticks", [1, 33, 257])
    def test_bit_exact_vs_repeated_update(self, sample, ticks):
        a = LoadTracker(halflife_ms=32, initial=413.0)
        b = LoadTracker(halflife_ms=32, initial=413.0)
        for _ in range(ticks):
            a.update(sample)
        b.advance(sample, ticks)
        assert a.value == b.value  # exact, no tolerance

    def test_zero_ticks_is_identity(self):
        t = LoadTracker(halflife_ms=32, initial=512.0)
        assert t.advance(700.0, 0) == 512.0

    def test_rejects_bad_arguments(self):
        t = LoadTracker(halflife_ms=32)
        with pytest.raises(ValueError):
            t.advance(-1.0, 5)
        with pytest.raises(ValueError):
            t.advance(float(LOAD_SCALE) + 1, 5)
        with pytest.raises(ValueError):
            t.advance(100.0, -1)


class TestDecayDrift:
    """``decay(n)`` uses the closed-form power; bound its drift against
    the iterative ``update(0)`` ladder it stands in for."""

    @pytest.mark.parametrize("ticks", [1, 32, 1000, 60_000])
    def test_drift_within_float_noise(self, ticks):
        iterative = LoadTracker(halflife_ms=32, initial=1000.0)
        closed = LoadTracker(halflife_ms=32, initial=1000.0)
        for _ in range(ticks):
            iterative.update(0.0)
        closed.decay(ticks)
        # Each iterative step rounds once (~half an ulp), so the paths
        # diverge by at most ~ticks ulps relative — far below any
        # scheduler threshold granularity.
        if iterative.value > 0.0:
            assert closed.value == pytest.approx(iterative.value, rel=1e-10)
        else:
            assert closed.value <= 5e-324 * 10  # both underflowed to ~0

    def test_single_tick_decay_is_exact(self):
        a = LoadTracker(halflife_ms=32, initial=777.0)
        b = LoadTracker(halflife_ms=32, initial=777.0)
        a.update(0.0)
        b.decay(1)
        assert a.value == b.value
