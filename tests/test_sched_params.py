"""Tests for scheduler/governor parameter presets."""

import pytest

from repro.sched.params import (
    GovernorParams,
    HMPParams,
    baseline_config,
    variant_configs,
)


class TestHMPParams:
    def test_defaults_match_paper(self):
        p = HMPParams()
        assert p.up_threshold == 700
        assert p.down_threshold == 256
        assert p.history_halflife_ms == 32.0

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            HMPParams(up_threshold=200, down_threshold=300)

    def test_rejects_out_of_scale(self):
        with pytest.raises(ValueError):
            HMPParams(up_threshold=2000, down_threshold=256)

    def test_rejects_bad_halflife(self):
        with pytest.raises(ValueError):
            HMPParams(history_halflife_ms=0)


class TestGovernorParams:
    def test_defaults_match_paper(self):
        p = GovernorParams()
        assert p.sampling_ms == 20
        assert p.target_load == pytest.approx(0.70)

    def test_rejects_bad_sampling(self):
        with pytest.raises(ValueError):
            GovernorParams(sampling_ms=0)

    def test_rejects_down_above_target(self):
        with pytest.raises(ValueError):
            GovernorParams(target_load=0.5, down_threshold=0.6)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            GovernorParams(target_load=1.5)


class TestVariantConfigs:
    def test_eight_variants_in_paper_order(self):
        names = [c.name for c in variant_configs()]
        assert names == [
            "interval-60",
            "interval-100",
            "target-high-80",
            "target-low-60",
            "hmp-conservative",
            "hmp-aggressive",
            "weight-2x",
            "weight-half",
        ]

    def test_variant_values_match_paper(self):
        by_name = {c.name: c for c in variant_configs()}
        assert by_name["interval-60"].governor.sampling_ms == 60
        assert by_name["interval-100"].governor.sampling_ms == 100
        assert by_name["target-high-80"].governor.target_load == pytest.approx(0.80)
        assert by_name["target-low-60"].governor.target_load == pytest.approx(0.60)
        assert by_name["hmp-conservative"].hmp.up_threshold == 850
        assert by_name["hmp-conservative"].hmp.down_threshold == 400
        assert by_name["hmp-aggressive"].hmp.up_threshold == 550
        assert by_name["hmp-aggressive"].hmp.down_threshold == 100
        assert by_name["weight-2x"].hmp.history_halflife_ms == 64.0
        assert by_name["weight-half"].hmp.history_halflife_ms == 16.0

    def test_governor_variants_keep_baseline_hmp(self):
        base = baseline_config()
        by_name = {c.name: c for c in variant_configs()}
        assert by_name["interval-60"].hmp == base.hmp
        assert by_name["weight-2x"].governor == base.governor
