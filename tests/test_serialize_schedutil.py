"""Tests for JSON serialization and the schedutil governor."""

import dataclasses
import json

import numpy as np
import pytest

from repro.platform.coretypes import CoreType, cortex_a7
from repro.platform.opp import little_opp_table
from repro.sched.governor import ClusterFreqDomain, SchedutilGovernor
from repro.sched.load import LoadTracker
from repro.sim.core import SimCore
from repro.sim.task import Task, TaskState
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.experiments.serialize import dump_result, to_jsonable

TICK_S = 0.001


class TestToJsonable:
    def test_primitives_pass_through(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars_and_arrays(self):
        assert to_jsonable(np.float32(1.5)) == pytest.approx(1.5)
        assert to_jsonable(np.int64(7)) == 7
        assert to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_enum_keys_and_values(self):
        data = {CoreType.LITTLE: {500_000: 1.0}}
        assert to_jsonable(data) == {"little": {"500000": 1.0}}

    def test_dataclasses(self):
        @dataclasses.dataclass
        class Point:
            x: float
            y: dict

        assert to_jsonable(Point(1.0, {CoreType.BIG: 2})) == {
            "x": 1.0, "y": {"big": 2},
        }

    def test_real_experiment_result_roundtrips(self):
        from repro.experiments.fig02_03_spec import run_spec_comparison
        from repro.workloads.spec import spec_benchmark

        result = run_spec_comparison(benchmarks=[spec_benchmark("hmmer")])
        payload = to_jsonable(result)
        text = json.dumps(payload)  # must not raise
        assert "hmmer" in text

    def test_dump_result(self, tmp_path):
        @dataclasses.dataclass
        class R:
            values: dict

        path = str(tmp_path / "r.json")
        dump_result(R({"a": np.float64(2.0)}), path)
        with open(path) as f:
            assert json.load(f) == {"values": {"a": 2.0}}


class TestSchedutil:
    def make_domain(self):
        table = little_opp_table()
        cores = [SimCore(0, cortex_a7(), True, table.max_khz)]
        return ClusterFreqDomain(CoreType.LITTLE, table, cores), cores

    def enqueue_task_with_load(self, core, load):
        def behavior(ctx):
            yield  # pragma: no cover

        task = Task("t", behavior, COMPUTE_BOUND)
        task.load = LoadTracker(initial=load)
        task.state = TaskState.RUNNABLE
        core.enqueue(task)
        return task

    def test_tracks_runqueue_load(self):
        domain, cores = self.make_domain()
        gov = SchedutilGovernor()
        gov.start(domain)
        task = self.enqueue_task_with_load(cores[0], 512.0)
        gov.tick(domain, 0, TICK_S)
        expected = domain.opp_table.ceil(int(1.25 * 0.5 * domain.opp_table.max_khz))
        assert domain.freq_khz == expected

    def test_raises_immediately_lowers_after_hold(self):
        domain, cores = self.make_domain()
        gov = SchedutilGovernor(down_hold_ms=20)
        gov.start(domain)
        task = self.enqueue_task_with_load(cores[0], 1024.0)
        gov.tick(domain, 0, TICK_S)
        assert domain.freq_khz == domain.opp_table.max_khz
        task.load.reset(100.0)
        for t in range(10):
            gov.tick(domain, t, TICK_S)
        assert domain.freq_khz == domain.opp_table.max_khz  # held
        for t in range(30):
            gov.tick(domain, t, TICK_S)
        assert domain.freq_khz < domain.opp_table.max_khz

    def test_idle_runqueue_falls_to_min(self):
        domain, cores = self.make_domain()
        gov = SchedutilGovernor(down_hold_ms=0)
        gov.start(domain)
        domain.set_freq(domain.opp_table.max_khz)
        gov.tick(domain, 0, TICK_S)
        assert domain.freq_khz == domain.opp_table.min_khz

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedutilGovernor(headroom=0.5)
        with pytest.raises(ValueError):
            SchedutilGovernor(down_hold_ms=-1)
