"""Tests for the simulation engine: execution, sharing, migration, power."""

import pytest

from repro.platform.chip import CoreConfig, exynos5422
from repro.platform.coretypes import CoreType
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.sched.governor import PerformanceGovernor
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, TaskState, Work


def spin_forever(ctx):
    while True:
        yield Work(1.0)


def make_sim(**kwargs) -> Simulator:
    kwargs.setdefault("max_seconds", 3.0)
    return Simulator(SimConfig(**kwargs))


def performance_governors():
    return {
        CoreType.LITTLE: PerformanceGovernor(),
        CoreType.BIG: PerformanceGovernor(),
    }


class TestConfig:
    def test_default_enables_all_cores(self):
        sim = make_sim()
        assert sum(c.enabled for c in sim.cores) == 8

    def test_core_config_limits_enabled(self):
        sim = make_sim(core_config=CoreConfig(2, 1))
        little = [c for c in sim.cores if c.core_type is CoreType.LITTLE and c.enabled]
        big = [c for c in sim.cores if c.core_type is CoreType.BIG and c.enabled]
        assert (len(little), len(big)) == (2, 1)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            SimConfig(max_seconds=0)

    def test_oversized_config_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(core_config=CoreConfig(9, 0))


class TestExecution:
    def test_single_spinner_saturates_one_core(self):
        sim = make_sim(governors=performance_governors(), max_seconds=1.0)
        sim.spawn(Task("spin", spin_forever, COMPUTE_BOUND, initial_load=1024.0))
        trace = sim.run()
        busiest = trace.busy.mean(axis=1).max()
        assert busiest == pytest.approx(1.0, abs=0.01)

    def test_processor_sharing_two_spinners_one_core(self):
        sim = make_sim(
            core_config=CoreConfig(1, 0),
            governors=performance_governors(),
            max_seconds=1.0,
        )
        t1 = Task("a", spin_forever, COMPUTE_BOUND)
        t2 = Task("b", spin_forever, COMPUTE_BOUND)
        sim.spawn(t1)
        sim.spawn(t2)
        sim.run()
        # Both make ~equal progress on the single shared core.
        assert t1.total_busy_s == pytest.approx(t2.total_busy_s, rel=0.05)
        assert t1.total_busy_s + t2.total_busy_s == pytest.approx(1.0, abs=0.02)

    def test_stop_request_halts_run(self):
        sim = make_sim(max_seconds=10.0)

        def behavior(ctx):
            yield Work(0.001)
            ctx.request_stop()

        sim.spawn(Task("t", behavior, COMPUTE_BOUND))
        trace = sim.run()
        assert trace.duration_s < 1.0

    def test_run_ends_when_all_tasks_finish(self):
        sim = make_sim(max_seconds=10.0)

        def behavior(ctx):
            yield Work(0.005)

        sim.spawn(Task("t", behavior, COMPUTE_BOUND))
        trace = sim.run()
        assert trace.duration_s < 1.0

    def test_disabled_cores_never_execute(self):
        sim = make_sim(core_config=CoreConfig(1, 0), max_seconds=0.5)
        sim.spawn(Task("spin", spin_forever, COMPUTE_BOUND))
        trace = sim.run()
        assert trace.busy[1:].sum() == 0.0


class TestHMPMigration:
    def test_heavy_task_migrates_to_big(self):
        sim = make_sim(max_seconds=2.0)
        sim.spawn(Task("heavy", spin_forever, COMPUTE_BOUND))
        trace = sim.run()
        big_rows = trace.cores_of_type(CoreType.BIG)
        # After the governor ramps and load accumulates, the spinner
        # ends up on a big core for the bulk of the run.
        second_half = trace.busy[big_rows, len(trace) // 2 :]
        assert second_half.sum(axis=0).mean() > 0.9

    def test_light_task_stays_on_little(self):
        sim = make_sim(max_seconds=3.0)

        def light(ctx):
            while True:
                yield Work(0.002)  # ~2ms every 50ms: ~4% duty
                yield Sleep(0.05)

        sim.spawn(Task("light", light, COMPUTE_BOUND))
        trace = sim.run()
        big_rows = trace.cores_of_type(CoreType.BIG)
        assert trace.busy[big_rows].sum() == 0.0

    def test_no_big_cores_keeps_heavy_on_little(self):
        sim = make_sim(core_config=CoreConfig(4, 0), max_seconds=1.0)
        task = Task("heavy", spin_forever, COMPUTE_BOUND, initial_load=1024.0)
        sim.spawn(task)
        trace = sim.run()
        big_rows = trace.cores_of_type(CoreType.BIG)
        assert trace.busy[big_rows].sum() == 0.0

    def test_big_only_config_runs_everything_on_big(self):
        sim = make_sim(core_config=CoreConfig(0, 4), max_seconds=1.0)

        def light(ctx):
            while True:
                yield Work(0.001)
                yield Sleep(0.02)

        sim.spawn(Task("light", light, COMPUTE_BOUND))
        trace = sim.run()
        little_rows = trace.cores_of_type(CoreType.LITTLE)
        big_rows = trace.cores_of_type(CoreType.BIG)
        assert trace.busy[little_rows].sum() == 0.0
        assert trace.busy[big_rows].sum() > 0.0

    def test_migration_counted(self):
        sim = make_sim(max_seconds=2.0)
        task = Task("heavy", spin_forever, COMPUTE_BOUND)
        sim.spawn(task)
        sim.run()
        assert task.migrations >= 1


class TestDeterminism:
    def _run_once(self, seed):
        sim = make_sim(max_seconds=1.0, seed=seed)

        def jittery(ctx):
            while True:
                yield Work(ctx.rng.lognormal(0.003, 0.5))
                yield Sleep(ctx.rng.uniform(0.005, 0.02))

        sim.spawn(Task("a", jittery, COMPUTE_BOUND))
        sim.spawn(Task("b", jittery, COMPUTE_BOUND))
        trace = sim.run()
        return trace.busy.sum(), trace.average_power_mw()

    def test_same_seed_reproduces_exactly(self):
        assert self._run_once(11) == self._run_once(11)

    def test_different_seed_differs(self):
        assert self._run_once(11) != self._run_once(12)


class TestPowerAccounting:
    def test_power_positive_and_bounded(self):
        sim = make_sim(max_seconds=0.5)
        sim.spawn(Task("spin", spin_forever, COMPUTE_BOUND))
        trace = sim.run()
        assert (trace.power_mw > 0).all()
        assert trace.power_mw.max() < 10_000

    def test_idle_system_draws_base_power(self):
        sim = make_sim(max_seconds=0.2)
        trace = sim.run()
        pm = exynos5422().power_model
        # Idle cores still leak (notably the big cluster), but the total
        # stays well below one busy little core's worth above base.
        assert trace.average_power_mw() < 2.5 * pm.params.base_mw

    def test_busy_draws_more_than_idle(self):
        idle_sim = make_sim(max_seconds=0.3, seed=1)
        idle_power = idle_sim.run().average_power_mw()
        busy_sim = make_sim(max_seconds=0.3, seed=1)
        busy_sim.spawn(Task("spin", spin_forever, COMPUTE_BOUND))
        busy_power = busy_sim.run().average_power_mw()
        assert busy_power > idle_power
