"""Tests for deterministic RNG streams."""

import pytest

from repro.sim.rng import RngStream


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RngStream(42)
        b = RngStream(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert RngStream(1).random() != RngStream(2).random()

    def test_split_streams_are_independent(self):
        root = RngStream(42)
        x = root.split("x")
        # Drawing from one split must not perturb a sibling.
        before = RngStream(42).split("y").random()
        for _ in range(100):
            x.random()
        after = root.split("y").random()
        assert before == after

    def test_split_is_deterministic(self):
        assert RngStream(7).split("a").random() == RngStream(7).split("a").random()

    def test_nested_splits_distinct(self):
        root = RngStream(7)
        assert root.split("a").split("b").random() != root.split("a/b2").random()


class TestDistributions:
    def test_uniform_in_range(self):
        rng = RngStream(1)
        for _ in range(100):
            assert 2.0 <= rng.uniform(2.0, 3.0) <= 3.0

    def test_lognormal_mean_parameterization(self):
        rng = RngStream(1)
        samples = [rng.lognormal(10.0, 0.5) for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        # `mean` parameter is the linear-space expectation.
        assert mean == pytest.approx(10.0, rel=0.05)

    def test_lognormal_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            RngStream(1).lognormal(0.0, 0.5)

    def test_lognormal_positive(self):
        rng = RngStream(3)
        assert all(rng.lognormal(1.0, 1.0) > 0 for _ in range(100))

    def test_expovariate_positive(self):
        rng = RngStream(4)
        assert all(rng.expovariate(10.0) > 0 for _ in range(100))

    def test_randint_bounds(self):
        rng = RngStream(5)
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}
