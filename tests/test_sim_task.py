"""Tests for tasks, directives, and channels."""

import pytest

from repro.platform.perfmodel import COMPUTE_BOUND, WorkClass
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import (
    Channel,
    Sleep,
    SleepUntil,
    Task,
    TaskState,
    WaitSignal,
    Work,
)


def make_sim(max_seconds=5.0, **kwargs) -> Simulator:
    return Simulator(SimConfig(max_seconds=max_seconds, **kwargs))


class TestDirectives:
    def test_work_rejects_negative(self):
        with pytest.raises(ValueError):
            Work(-1.0)

    def test_sleep_rejects_negative(self):
        with pytest.raises(ValueError):
            Sleep(-0.1)

    def test_wait_signal_rejects_zero_count(self):
        with pytest.raises(ValueError):
            WaitSignal(Channel(), count=0)


class TestChannel:
    def test_post_accumulates_permits(self):
        chan = Channel("c")
        chan.post()
        chan.post(2)
        assert chan.permits == 3

    def test_post_rejects_zero(self):
        with pytest.raises(ValueError):
            Channel().post(0)


class TestTaskLifecycle:
    def test_finishes_after_work(self):
        sim = make_sim()

        def behavior(ctx):
            yield Work(0.01)

        task = Task("t", behavior, COMPUTE_BOUND)
        sim.spawn(task)
        sim.run()
        assert task.state is TaskState.FINISHED
        assert task.total_busy_s > 0

    def test_work_time_matches_throughput(self):
        """0.1 units on a little core pinned at 1.3GHz takes 100ms."""
        from repro.experiments.common import fixed_governors, single_core_config
        from repro.platform.chip import exynos5422
        from repro.platform.coretypes import CoreType

        chip = exynos5422()
        sim = Simulator(SimConfig(
            chip=chip,
            core_config=single_core_config(CoreType.LITTLE),
            governors=fixed_governors(chip, little_khz=1_300_000),
            max_seconds=5.0,
        ))
        done_at = []

        def behavior(ctx):
            yield Work(0.1)
            done_at.append(ctx.now_s)
            ctx.request_stop()

        sim.spawn(Task("t", behavior, COMPUTE_BOUND))
        sim.run()
        assert done_at[0] == pytest.approx(0.1, abs=0.005)

    def test_sleep_duration_respected(self):
        sim = make_sim()
        wake_times = []

        def behavior(ctx):
            yield Sleep(0.25)
            wake_times.append(ctx.now_s)
            ctx.request_stop()

        sim.spawn(Task("sleeper", behavior, COMPUTE_BOUND))
        sim.run()
        assert wake_times[0] == pytest.approx(0.25, abs=0.002)

    def test_sleep_until_past_is_noop(self):
        sim = make_sim()
        order = []

        def behavior(ctx):
            yield SleepUntil(-1.0)
            order.append("after")
            yield Work(0.001)
            ctx.request_stop()

        sim.spawn(Task("t", behavior, COMPUTE_BOUND))
        sim.run()
        assert order == ["after"]

    def test_zero_work_is_skipped(self):
        sim = make_sim()

        def behavior(ctx):
            yield Work(0.0)
            yield Work(0.001)

        task = Task("t", behavior, COMPUTE_BOUND)
        sim.spawn(task)
        sim.run()
        assert task.state is TaskState.FINISHED

    def test_cannot_start_twice(self):
        sim = make_sim()

        def behavior(ctx):
            yield Work(0.001)

        task = Task("t", behavior, COMPUTE_BOUND)
        sim.spawn(task)
        with pytest.raises(RuntimeError):
            sim.spawn(task)

    def test_directive_work_class_override(self):
        special = WorkClass("special", compute_fraction=0.5, wss_kb=64)
        sim = make_sim()
        seen = []

        def behavior(ctx):
            yield Work(0.001, work_class=special)
            ctx.request_stop()

        task = Task("t", behavior, COMPUTE_BOUND)
        sim.spawn(task)
        # Before running the first Work directive is current.
        assert task.current_work_class is special
        sim.run()


class TestSignalling:
    def test_producer_consumer(self):
        sim = make_sim()
        chan = sim.channel("jobs")
        consumed = []

        def producer(ctx):
            for _ in range(3):
                yield Work(0.002)
                chan.post()
            yield Sleep(0.5)
            ctx.request_stop()

        def consumer(ctx):
            while True:
                yield WaitSignal(chan)
                yield Work(0.001)
                consumed.append(ctx.now_s)

        sim.spawn(Task("prod", producer, COMPUTE_BOUND))
        sim.spawn(Task("cons", consumer, COMPUTE_BOUND))
        sim.run()
        assert len(consumed) == 3

    def test_signals_not_lost_when_consumer_busy(self):
        """Counting semantics: posts made while the consumer works are kept."""
        sim = make_sim()
        chan = sim.channel("jobs")
        consumed = []

        def producer(ctx):
            for _ in range(5):
                chan.post()
            yield Sleep(1.0)
            ctx.request_stop()

        def consumer(ctx):
            while True:
                yield WaitSignal(chan)
                yield Work(0.02)
                consumed.append(ctx.now_s)

        sim.spawn(Task("prod", producer, COMPUTE_BOUND))
        sim.spawn(Task("cons", consumer, COMPUTE_BOUND))
        sim.run()
        assert len(consumed) == 5

    def test_wait_count_joins_multiple_posts(self):
        sim = make_sim()
        done = sim.channel("done")
        joined = []

        def worker(ctx, i):
            yield Work(0.001 * (i + 1))
            done.post()

        def joiner(ctx):
            yield WaitSignal(done, count=3)
            joined.append(ctx.now_s)
            ctx.request_stop()

        for i in range(3):
            sim.spawn(Task(f"w{i}", lambda ctx, i=i: worker(ctx, i), COMPUTE_BOUND))
        sim.spawn(Task("join", joiner, COMPUTE_BOUND))
        sim.run()
        assert len(joined) == 1

    def test_immediately_available_permits_do_not_block(self):
        sim = make_sim()
        chan = sim.channel("c")
        chan.post(2)
        hits = []

        def behavior(ctx):
            yield WaitSignal(chan, count=2)
            hits.append(ctx.now_s)
            ctx.request_stop()

        sim.spawn(Task("t", behavior, COMPUTE_BOUND))
        sim.run()
        assert hits and hits[0] < 0.01
