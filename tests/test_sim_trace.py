"""Tests for trace recording and windowed accessors."""

import numpy as np
import pytest

from repro.platform.coretypes import CoreType
from repro.sim.trace import Trace

TYPES = [CoreType.LITTLE] * 2 + [CoreType.BIG] * 2
ENABLED = [True, True, True, False]


def make_trace(n_ticks=100) -> Trace:
    trace = Trace(TYPES, ENABLED, max_ticks=n_ticks + 10)
    for i in range(n_ticks):
        busy = [1.0 if i % 2 == 0 else 0.0, 0.5, 0.0, 0.0]
        trace.record(busy, 600_000, 800_000, 500.0 + i)
    trace.finalize()
    return trace


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Trace(TYPES, [True], max_ticks=10)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Trace(TYPES, ENABLED, max_ticks=0)

    def test_capacity_enforced(self):
        trace = Trace(TYPES, ENABLED, max_ticks=1)
        trace.record([0, 0, 0, 0], 500_000, 800_000, 300.0)
        with pytest.raises(RuntimeError):
            trace.record([0, 0, 0, 0], 500_000, 800_000, 300.0)


class TestAccessors:
    def test_len_and_duration(self):
        trace = make_trace(100)
        assert len(trace) == 100
        assert trace.duration_s == pytest.approx(0.1)

    def test_freq_per_cluster(self):
        trace = make_trace(10)
        assert (trace.freq_khz(CoreType.LITTLE) == 600_000).all()
        assert (trace.freq_khz(CoreType.BIG) == 800_000).all()

    def test_cores_of_type(self):
        trace = make_trace(1)
        assert trace.cores_of_type(CoreType.LITTLE) == [0, 1]
        assert trace.cores_of_type(CoreType.BIG) == [2, 3]
        assert trace.enabled_cores_of_type(CoreType.BIG) == [2]

    def test_energy_integrates_power(self):
        trace = make_trace(100)
        # Energy (mJ) = mean power (mW) * duration (s).
        assert trace.energy_mj() == pytest.approx(
            trace.average_power_mw() * trace.duration_s
        )


class TestWindows:
    def test_active_samples_any_execution_counts(self):
        trace = make_trace(100)
        active = trace.active_samples(window_ms=10)
        assert active.shape == (4, 10)
        # Core 0 alternates per tick: active in every 10ms window.
        assert active[0].all()
        # Core 2 never ran.
        assert not active[2].any()

    def test_window_utilization_averages(self):
        trace = make_trace(100)
        util = trace.window_utilization(window_ms=10)
        assert util[0].mean() == pytest.approx(0.5)
        assert util[1].mean() == pytest.approx(0.5)

    def test_window_freq_samples_window_starts(self):
        trace = make_trace(100)
        freqs = trace.window_freq_khz(CoreType.LITTLE, window_ms=10)
        assert freqs.shape == (10,)
        assert (freqs == 600_000).all()

    def test_partial_window_dropped(self):
        trace = make_trace(95)
        assert trace.active_samples(10).shape[1] == 9


class TestTrimmed:
    def test_trim_removes_warmup(self):
        trace = make_trace(100)
        trimmed = trace.trimmed(0.05)
        assert len(trimmed) == 50
        assert trimmed.duration_s == pytest.approx(0.05)

    def test_trim_preserves_alignment(self):
        trace = make_trace(100)
        trimmed = trace.trimmed(0.03)
        np.testing.assert_array_equal(trimmed.busy, trace.busy[:, 30:])
        np.testing.assert_array_equal(trimmed.power_mw, trace.power_mw[30:])

    def test_trim_beyond_length_yields_empty(self):
        trace = make_trace(10)
        assert len(trace.trimmed(10.0)) == 0

    def test_trim_rejects_negative(self):
        with pytest.raises(ValueError):
            make_trace(10).trimmed(-1.0)

    def test_trim_zero_is_identity(self):
        trace = make_trace(20)
        assert len(trace.trimmed(0.0)) == 20


class TestTrimmedAliasing:
    """``trimmed()`` is documented as an aliasing view, not a copy."""

    def test_view_shares_parent_storage(self):
        trace = make_trace(100)
        view = trace.trimmed(0.02)
        assert np.shares_memory(view.busy, trace.busy)
        assert np.shares_memory(view.power_mw, trace.power_mw)
        assert np.shares_memory(view.wakeups, trace.wakeups)

    def test_parent_mutation_is_visible_through_view(self):
        trace = make_trace(100)
        view = trace.trimmed(0.02)  # skips 20 ticks
        idx = np.asarray([50], dtype=np.intp)
        trace.fill_power(idx, np.asarray([9999.0]), np.asarray([1.0]),
                         np.asarray([2.0]))
        assert view.power_mw[30] == np.float32(9999.0)

    def test_view_is_finalized_and_costs_no_copy(self):
        trace = make_trace(100)
        view = trace.trimmed(0.05)
        assert view._finalized
        assert len(view) == 50
        assert view.busy.base is not None  # a slice, not an owner


class TestFillPower:
    """Deferred-power backfill matches the per-tick recording cast."""

    def test_matches_record_float32_cast(self):
        value = 123.456789  # not exactly representable in float32
        a = Trace(TYPES, ENABLED, max_ticks=4)
        a.record([0.0] * 4, 600_000, 800_000, value,
                 little_cpu_mw=value / 3, big_cpu_mw=value / 7)
        a.finalize()
        b = Trace(TYPES, ENABLED, max_ticks=4)
        b.record([0.0] * 4, 600_000, 800_000, 0.0)
        b.fill_power(np.asarray([0], dtype=np.intp), np.asarray([value]),
                     np.asarray([value / 3]), np.asarray([value / 7]))
        b.finalize()
        assert np.array_equal(a.power_mw, b.power_mw)
        for ct in (CoreType.LITTLE, CoreType.BIG):
            assert np.array_equal(a.cpu_power_mw(ct), b.cpu_power_mw(ct))

    def test_rejects_unrecorded_index(self):
        trace = Trace(TYPES, ENABLED, max_ticks=10)
        trace.record([0.0] * 4, 600_000, 800_000, 0.0)
        with pytest.raises(IndexError, match="beyond recorded length"):
            trace.fill_power(np.asarray([5], dtype=np.intp),
                             np.asarray([1.0]), np.asarray([0.0]),
                             np.asarray([0.0]))

    def test_empty_indices_is_noop(self):
        trace = make_trace(10)
        empty = np.asarray([], dtype=np.intp)
        trace.fill_power(empty, empty.astype(np.float64),
                         empty.astype(np.float64), empty.astype(np.float64))
