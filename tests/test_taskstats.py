"""Tests for the per-task statistics collector."""

import pytest

from repro.core.taskstats import TaskStatsCollector
from repro.platform.chip import CoreConfig
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Sleep, Task, Work


def spin(ctx):
    while True:
        yield Work(1.0)


def light(ctx):
    while True:
        yield Work(0.001)
        yield Sleep(0.03)


class TestTaskStatsCollector:
    def test_accounts_cpu_time(self):
        sim = Simulator(SimConfig(max_seconds=1.0))
        stats = TaskStatsCollector.attach(sim)
        task = Task("spin", spin, COMPUTE_BOUND)
        sim.spawn(task)
        sim.run()
        s = stats.by_name("spin")
        assert s.busy_s == pytest.approx(task.total_busy_s, rel=1e-6)
        assert s.busy_s == pytest.approx(1.0, abs=0.02)

    def test_big_share_for_heavy_task(self):
        sim = Simulator(SimConfig(max_seconds=2.0))
        stats = TaskStatsCollector.attach(sim)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        sim.run()
        s = stats.by_name("spin")
        assert s.big_share > 0.5
        assert s.migrations >= 1
        assert s.max_load > 700

    def test_little_share_for_light_task(self):
        sim = Simulator(SimConfig(max_seconds=2.0))
        stats = TaskStatsCollector.attach(sim)
        sim.spawn(Task("light", light, COMPUTE_BOUND))
        sim.run()
        s = stats.by_name("light")
        assert s.big_share == 0.0
        assert s.mean_load < 300

    def test_ordering_and_consumers(self):
        sim = Simulator(SimConfig(max_seconds=1.5))
        stats = TaskStatsCollector.attach(sim)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        sim.spawn(Task("light", light, COMPUTE_BOUND))
        sim.run()
        ordered = stats.stats()
        assert ordered[0].name == "spin"
        consumers = stats.big_core_consumers()
        assert [s.name for s in consumers] == ["spin"]

    def test_unknown_task_raises(self):
        sim = Simulator(SimConfig(max_seconds=0.1))
        stats = TaskStatsCollector.attach(sim)
        sim.run()
        with pytest.raises(KeyError):
            stats.by_name("ghost")

    def test_render_contains_tasks(self):
        sim = Simulator(SimConfig(max_seconds=0.5))
        stats = TaskStatsCollector.attach(sim)
        sim.spawn(Task("spin", spin, COMPUTE_BOUND))
        sim.run()
        assert "spin" in stats.render()

    def test_total_busy_matches_trace(self):
        sim = Simulator(SimConfig(max_seconds=1.0, core_config=CoreConfig(2, 0)))
        stats = TaskStatsCollector.attach(sim)
        sim.spawn(Task("a", spin, COMPUTE_BOUND))
        sim.spawn(Task("b", light, COMPUTE_BOUND))
        trace = sim.run()
        trace_busy = float(trace.busy.sum()) * trace.tick_s
        assert stats.total_busy_s() == pytest.approx(trace_busy, rel=0.01)
