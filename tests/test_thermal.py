"""Tests for the thermal model and engine integration."""

import pytest

from repro.platform.chip import CoreConfig, exynos5422
from repro.platform.coretypes import CoreType
from repro.platform.perfmodel import COMPUTE_BOUND
from repro.platform.thermal import ThermalModel, ThermalParams
from repro.sim.engine import SimConfig, Simulator
from repro.sim.task import Task, Work

BIG_OPPS = exynos5422().big_cluster.opp_table.frequencies_khz


class TestThermalParams:
    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            ThermalParams(tau_s=0)

    def test_rejects_release_above_trip(self):
        with pytest.raises(ValueError):
            ThermalParams(trip_c=70, release_c=75)

    def test_rejects_bad_eval(self):
        with pytest.raises(ValueError):
            ThermalParams(eval_ms=0)


class TestThermalModel:
    def test_starts_at_ambient_uncapped(self):
        model = ThermalModel(ThermalParams(), BIG_OPPS)
        assert model.temperature_c == pytest.approx(30.0)
        assert model.cap_khz == max(BIG_OPPS)
        assert not model.throttled

    def test_temperature_approaches_steady_state(self):
        params = ThermalParams(trip_c=500, release_c=400)  # never trips
        model = ThermalModel(params, BIG_OPPS)
        for _ in range(100_000):
            model.step(2000.0, 0.001)
        steady = params.ambient_c + 2.0 * params.r_thermal_c_per_w
        assert model.temperature_c == pytest.approx(steady, abs=0.5)

    def test_trips_under_sustained_power(self):
        model = ThermalModel(ThermalParams(), BIG_OPPS)
        for _ in range(30_000):
            model.step(6000.0, 0.001)
        assert model.throttled
        assert model.cap_khz < max(BIG_OPPS)
        assert model.throttle_events >= 1

    def test_recovers_when_cool(self):
        model = ThermalModel(ThermalParams(), BIG_OPPS)
        for _ in range(30_000):
            model.step(6000.0, 0.001)
        assert model.throttled
        for _ in range(60_000):
            model.step(300.0, 0.001)
        assert not model.throttled
        assert model.cap_khz == max(BIG_OPPS)

    def test_cap_steps_one_opp_per_eval(self):
        params = ThermalParams(eval_ms=100)
        model = ThermalModel(params, BIG_OPPS)
        model.temperature_c = params.trip_c + 10
        # One evaluation period at enormous power: exactly one step.
        for _ in range(100):
            model.step(10_000.0, 0.001)
        assert model.cap_khz == BIG_OPPS[-2]

    def test_rejects_empty_opps(self):
        with pytest.raises(ValueError):
            ThermalModel(ThermalParams(), ())


class TestEngineIntegration:
    def spin(self, ctx):
        while True:
            yield Work(1.0)

    def test_sustained_load_throttles_big_cluster(self):
        config = SimConfig(
            chip=exynos5422(),
            core_config=CoreConfig(little=1, big=4),
            thermal=ThermalParams(),
            max_seconds=25.0,
        )
        sim = Simulator(config)
        for i in range(4):
            sim.spawn(Task(f"spin{i}", self.spin, COMPUTE_BOUND, initial_load=1024.0))
        trace = sim.run()
        big_freq = trace.freq_khz(CoreType.BIG)
        assert big_freq[:500].max() == 1_900_000  # starts unthrottled
        assert big_freq[-1000:].mean() < 1_500_000  # sags under heat
        assert sim.thermal is not None and sim.thermal.throttled

    def test_disabled_by_default(self):
        sim = Simulator(SimConfig(max_seconds=0.1))
        assert sim.thermal is None
