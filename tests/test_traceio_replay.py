"""Tests for trace persistence and load-trace replay workloads."""

import numpy as np
import pytest

from repro.core.study import run_app
from repro.core.tlp import tlp_stats
from repro.platform.chip import CoreConfig
from repro.platform.coretypes import CoreType
from repro.sim.engine import SimConfig, Simulator
from repro.sim.traceio import load_trace, save_trace
from repro.workloads.replay import LoadTraceApp, validate_segments


class TestTraceIO:
    def test_roundtrip_preserves_arrays(self, tmp_path):
        run = run_app("video-player", seed=3, max_seconds=2.0)
        path = str(tmp_path / "trace.npz")
        save_trace(run.trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.busy, run.trace.busy)
        np.testing.assert_array_equal(loaded.power_mw, run.trace.power_mw)
        np.testing.assert_array_equal(
            loaded.freq_khz(CoreType.BIG), run.trace.freq_khz(CoreType.BIG)
        )
        assert loaded.core_types == run.trace.core_types
        assert loaded.enabled == run.trace.enabled

    def test_analyses_identical_on_loaded_trace(self, tmp_path):
        run = run_app("video-player", seed=3, max_seconds=2.0)
        path = str(tmp_path / "trace.npz")
        save_trace(run.trace, path)
        loaded = load_trace(path)
        assert tlp_stats(loaded) == tlp_stats(run.trace)

    def test_version_check(self, tmp_path):
        import json

        run = run_app("video-player", seed=3, max_seconds=1.0)
        path = str(tmp_path / "trace.npz")
        save_trace(run.trace, path)
        # Corrupt the version field.
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode())
        header["version"] = 99
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError):
            load_trace(path)


class TestReplayValidation:
    def test_rejects_empty_thread(self):
        with pytest.raises(ValueError):
            validate_segments([])

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            validate_segments([(0.0, 0.5)])

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            validate_segments([(1.0, 1.5)])

    def test_rejects_no_threads(self):
        with pytest.raises(ValueError):
            LoadTraceApp("r", {})


class TestReplayExecution:
    def run_replay(self, threads, core_config=None, max_seconds=20.0, seed=0):
        app = LoadTraceApp("replay", threads)
        sim = Simulator(SimConfig(
            core_config=core_config, max_seconds=max_seconds, seed=seed
        ))
        app.install(sim)
        trace = sim.run()
        return app, trace

    def test_replays_requested_work(self):
        app, trace = self.run_replay({"t": [(2.0, 0.4)]})
        # 2 s at 40% of reference capacity = 0.8 reference-seconds.
        total_busy_units = 0.8
        # Busy *time* varies with DVFS, but the run must complete and
        # take at least the trace duration.
        assert app.latency_s() >= 2.0 - 0.05
        assert float(trace.busy.sum()) * trace.tick_s > 0.5 * total_busy_units

    def test_low_util_thread_stays_little(self):
        app, trace = self.run_replay({"t": [(2.0, 0.2)]})
        big = trace.cores_of_type(CoreType.BIG)
        assert trace.busy[big].sum() == 0.0

    def test_sustained_high_util_reaches_big(self):
        app, trace = self.run_replay({"t": [(3.0, 1.0)]})
        big = trace.cores_of_type(CoreType.BIG)
        assert trace.busy[big].sum() > 0.0

    def test_multiple_threads_overlap(self):
        threads = {f"t{i}": [(2.0, 0.3)] for i in range(3)}
        app, trace = self.run_replay(threads)
        stats = tlp_stats(trace.trimmed(0.5))
        assert stats.tlp > 1.5

    def test_overload_stretches_makespan(self):
        # Two full-utilization threads on a single little core must take
        # about twice the nominal trace duration.
        app, _ = self.run_replay(
            {"a": [(1.0, 1.0)], "b": [(1.0, 1.0)]},
            core_config=CoreConfig(1, 0),
        )
        assert app.latency_s() > 1.6

    def test_helpers(self):
        app = LoadTraceApp("r", {"a": [(1.0, 0.5)], "b": [(2.5, 0.1)]})
        assert app.total_duration_s() == pytest.approx(2.5)
        assert app.total_work_units() == pytest.approx(0.75)


class TestTraceIOValidation:
    """PathLike acceptance and corrupt-file detection."""

    @staticmethod
    def _small_trace():
        from repro.sim.trace import Trace

        trace = Trace([CoreType.LITTLE, CoreType.BIG], [True, True], 8)
        for i in range(5):
            trace.record([0.5, 0.25], 1_000_000, 2_000_000, 100.0 + i,
                         wakeups=1, little_cpu_mw=10.0, big_cpu_mw=20.0)
        trace.finalize()
        return trace

    def test_accepts_pathlike(self, tmp_path):
        trace = self._small_trace()
        path = tmp_path / "tr.npz"  # pathlib.Path, not str
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.busy, trace.busy)
        assert len(loaded) == 5

    def test_truncated_array_rejected(self, tmp_path):
        trace = self._small_trace()
        path = tmp_path / "tr.npz"
        save_trace(trace, path)
        data = dict(np.load(path))
        data["power"] = data["power"][:3]
        np.savez_compressed(str(path), **data)
        with pytest.raises(ValueError, match="power=3"):
            load_trace(path)

    def test_missing_array_rejected(self, tmp_path):
        trace = self._small_trace()
        path = tmp_path / "tr.npz"
        save_trace(trace, path)
        data = dict(np.load(path))
        del data["wakeups"]
        np.savez_compressed(str(path), **data)
        with pytest.raises(ValueError, match="missing arrays wakeups"):
            load_trace(path)

    def test_core_count_mismatch_rejected(self, tmp_path):
        trace = self._small_trace()
        path = tmp_path / "tr.npz"
        save_trace(trace, path)
        data = dict(np.load(path))
        data["busy"] = data["busy"][:1]  # one core, header says two
        np.savez_compressed(str(path), **data)
        with pytest.raises(ValueError, match="header names 2 cores"):
            load_trace(path)
