"""RLE trace format: property-based round trips, laziness, corruption."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.study import run_app
from repro.sim.trace import Trace
from repro.sim.traceio import (
    LazyTrace,
    RLE_FORMAT_VERSION,
    RLEColumn,
    RLETrace,
    load_trace,
    load_trace_lazy,
    rle_decode,
    rle_encode,
    save_trace_rle,
)


# -- rle_encode / rle_decode properties --------------------------------------


run_values = st.lists(
    st.sampled_from([0, 1, 2, 250, -7, 21_000]), min_size=1, max_size=8
)
run_lengths = st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=8)


@st.composite
def piecewise_constant_arrays(draw):
    """Arrays shaped like fast-forward output: a few long constant spans."""
    values = draw(run_values)
    lengths = draw(st.lists(
        st.integers(min_value=1, max_value=200),
        min_size=len(values), max_size=len(values),
    ))
    dtype = draw(st.sampled_from([np.int32, np.int16, np.float32, np.float64]))
    return np.repeat(np.asarray(values, dtype=dtype), lengths)


@settings(max_examples=50, deadline=None)
@given(piecewise_constant_arrays())
def test_roundtrip_piecewise_constant(arr):
    values, lengths = rle_encode(arr)
    out = rle_decode(values, lengths)
    assert out.dtype == arr.dtype
    np.testing.assert_array_equal(out, arr)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-3, max_value=3), max_size=64))
def test_roundtrip_dense_random_ints(xs):
    arr = np.asarray(xs, dtype=np.int32)
    np.testing.assert_array_equal(rle_decode(*rle_encode(arr)), arr)


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.floats(allow_nan=False, allow_infinity=True, width=32), max_size=64,
))
def test_roundtrip_float32_bit_exact(xs):
    arr = np.asarray(xs, dtype=np.float32)
    out = rle_decode(*rle_encode(arr))
    assert out.dtype == np.float32
    np.testing.assert_array_equal(out, arr)


def test_roundtrip_nan_runs_are_bit_exact():
    # NaN != NaN, so each NaN lands in its own run — wasteful but exact.
    arr = np.array([1.0, np.nan, np.nan, 2.0], dtype=np.float32)
    values, lengths = rle_encode(arr)
    assert len(values) == 4
    out = rle_decode(values, lengths)
    np.testing.assert_array_equal(
        out.view(np.uint32), arr.view(np.uint32)
    )


def test_roundtrip_empty_and_single_tick():
    empty = np.zeros(0, dtype=np.float32)
    values, lengths = rle_encode(empty)
    assert len(values) == 0 and len(lengths) == 0
    assert rle_decode(values, lengths).shape == (0,)

    single = np.array([42], dtype=np.int16)
    values, lengths = rle_encode(single)
    assert list(values) == [42] and list(lengths) == [1]
    np.testing.assert_array_equal(rle_decode(values, lengths), single)


@settings(max_examples=25, deadline=None)
@given(piecewise_constant_arrays())
def test_column_roundtrip_2d(row):
    arr = np.stack([row, row[::-1].copy()])
    decoded = RLEColumn.encode(arr).decode()
    np.testing.assert_array_equal(decoded, arr)


# -- whole-trace round trips on real simulator output ------------------------


@pytest.fixture(scope="module")
def real_trace() -> Trace:
    return run_app("video-player", seed=3, max_seconds=2.0).trace


def assert_traces_equal(a: Trace, b: Trace) -> None:
    from repro.platform.coretypes import CoreType

    assert len(a) == len(b)
    assert a.tick_s == b.tick_s
    assert a.core_types == b.core_types
    np.testing.assert_array_equal(a.busy, b.busy)
    np.testing.assert_array_equal(a.power_mw, b.power_mw)
    np.testing.assert_array_equal(a.wakeups, b.wakeups)
    for ct in (CoreType.LITTLE, CoreType.BIG):
        np.testing.assert_array_equal(a.freq_khz(ct), b.freq_khz(ct))
        np.testing.assert_array_equal(a.cpu_power_mw(ct), b.cpu_power_mw(ct))


def test_rletrace_roundtrip_bit_exact(real_trace):
    rle = RLETrace.from_trace(real_trace)
    assert rle.nbytes < real_trace.nbytes  # it actually compresses
    assert_traces_equal(rle.to_trace(), real_trace)


def test_save_load_rle_file_roundtrip(tmp_path, real_trace):
    # Extensionless path on purpose: np.savez must not append ".npz".
    path = tmp_path / "trace.rle"
    save_trace_rle(real_trace, path)
    assert path.is_file()
    assert_traces_equal(load_trace(path), real_trace)


def test_load_trace_lazy_defers_inflation(tmp_path, real_trace):
    path = tmp_path / "trace.rle"
    save_trace_rle(real_trace, path)
    lazy = load_trace_lazy(path)
    assert isinstance(lazy, LazyTrace)
    # Metadata comes free, without inflating.
    assert not lazy.inflated
    assert len(lazy) == len(real_trace)
    assert lazy.duration_s == real_trace.duration_s
    assert lazy.payload_nbytes < real_trace.nbytes
    assert not lazy.inflated
    # First dense access inflates, bit-exactly.
    np.testing.assert_array_equal(lazy.busy, real_trace.busy)
    assert lazy.inflated


def test_lazytrace_pickles_as_rle_only(real_trace):
    lazy = LazyTrace.from_trace(real_trace)
    lazy.materialize()  # inflate, then prove pickling drops the dense copy
    payload = pickle.dumps(lazy)
    assert len(payload) < real_trace.nbytes / 2
    restored = pickle.loads(payload)
    assert isinstance(restored, LazyTrace)
    assert not restored.inflated
    assert_traces_equal(restored.materialize(), real_trace)


# -- corruption: truncated/edited files must fail loudly ---------------------


def _rewrite(path, mutate):
    """Load an RLE npz, apply ``mutate(arrays)``, write it back."""
    with np.load(path) as data:
        arrays = {k: np.array(data[k]) for k in data.files}
    mutate(arrays)
    with open(path, "wb") as f:
        np.savez(f, **arrays)


@pytest.fixture()
def rle_path(tmp_path, real_trace):
    path = tmp_path / "trace.rle"
    save_trace_rle(real_trace, path)
    return path


def _edit_header(arrays, **updates):
    header = json.loads(bytes(arrays["header"].tobytes()).decode())
    header.update(updates)
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )


def test_unsupported_version_rejected(rle_path):
    _rewrite(rle_path, lambda a: _edit_header(a, version=99))
    with pytest.raises(ValueError, match="unsupported trace format version"):
        load_trace(rle_path)


def test_missing_arrays_rejected(rle_path):
    _rewrite(rle_path, lambda a: a.pop("power_values"))
    with pytest.raises(ValueError, match="corrupt trace file.*missing arrays"):
        load_trace(rle_path)


def test_truncated_runs_rejected(rle_path):
    def truncate(arrays):
        arrays["power_values"] = arrays["power_values"][:-1]
        arrays["power_lengths"] = arrays["power_lengths"][:-1]
        arrays["power_splits"] = arrays["power_splits"] - 1

    _rewrite(rle_path, truncate)
    with pytest.raises(ValueError, match="tick counts must match"):
        load_trace(rle_path)


def test_values_lengths_mismatch_rejected(rle_path):
    _rewrite(rle_path, lambda a: a.update(
        busy_lengths=a["busy_lengths"][:-1]
    ))
    with pytest.raises(ValueError, match="values and.*lengths disagree"):
        load_trace(rle_path)


def test_nonpositive_lengths_rejected(rle_path):
    def zero_out(arrays):
        lengths = arrays["wakeups_lengths"]
        lengths[0] = 0
        # keep the total consistent-looking so only the sign check fires
        lengths[-1] += 0

    _rewrite(rle_path, zero_out)
    with pytest.raises(ValueError, match="non-positive run lengths"):
        load_trace(rle_path)


def test_wrong_row_count_rejected(rle_path):
    def drop_row(arrays):
        # One merged row: runs still sum up, but the row count is wrong.
        arrays["freq_splits"] = np.array([arrays["freq_splits"].sum()])

    _rewrite(rle_path, drop_row)
    with pytest.raises(ValueError, match="rows but"):
        load_trace(rle_path)


def test_header_records_version():
    assert RLE_FORMAT_VERSION == 3
