"""Tests for unit conventions and conversions."""

import pytest

from repro import units


class TestConversions:
    def test_khz_to_ghz(self):
        assert units.khz_to_ghz(1_300_000) == pytest.approx(1.3)

    def test_ghz_to_khz_roundtrip(self):
        assert units.ghz_to_khz(1.9) == 1_900_000
        assert units.khz_to_ghz(units.ghz_to_khz(0.5)) == pytest.approx(0.5)

    def test_ms_to_ticks(self):
        assert units.ms_to_ticks(0) == 0
        assert units.ms_to_ticks(1) == 1
        assert units.ms_to_ticks(20) == 20

    def test_ms_to_ticks_rejects_negative(self):
        with pytest.raises(ValueError):
            units.ms_to_ticks(-1)

    def test_seconds_to_ticks(self):
        assert units.seconds_to_ticks(1.0) == 1000
        assert units.seconds_to_ticks(0.5) == 500

    def test_ticks_to_seconds_roundtrip(self):
        assert units.ticks_to_seconds(units.seconds_to_ticks(2.5)) == pytest.approx(2.5)


class TestConstants:
    def test_tick_is_one_ms(self):
        # The paper's load history granularity.
        assert units.TICK_MS == 1
        assert units.TICKS_PER_SECOND == 1000

    def test_reference_frequency_is_little_max(self):
        assert units.F_REF_KHZ == 1_300_000

    def test_load_scale_matches_kernel_convention(self):
        # The HMP thresholds 700/256 are expressed on this scale.
        assert units.LOAD_SCALE == 1024

    def test_sampling_intervals_match_paper(self):
        assert units.TLP_SAMPLE_MS == 10
        assert units.GOVERNOR_SAMPLE_MS == 20
