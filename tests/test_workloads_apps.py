"""Tests for the 12 mobile app models, SPEC kernels, and microbenchmark."""

import pytest

from repro.core.study import run_app
from repro.platform.chip import exynos5422
from repro.platform.coretypes import CoreType
from repro.sim.engine import SimConfig, Simulator
from repro.experiments.common import fixed_governors, single_core_config
from repro.workloads.base import Metric
from repro.workloads.micro import UtilizationMicrobenchmark
from repro.workloads.mobile import (
    FPS_APP_NAMES,
    LATENCY_APP_NAMES,
    MOBILE_APP_NAMES,
    make_app,
)
from repro.workloads.spec import SPEC_BENCHMARKS, spec_benchmark


class TestRegistry:
    def test_twelve_apps(self):
        assert len(MOBILE_APP_NAMES) == 12

    def test_metric_partition_matches_table2(self):
        assert len(LATENCY_APP_NAMES) == 7
        assert len(FPS_APP_NAMES) == 5
        assert set(LATENCY_APP_NAMES) | set(FPS_APP_NAMES) == set(MOBILE_APP_NAMES)

    def test_make_app_unknown_name(self):
        with pytest.raises(KeyError):
            make_app("flappy-bird")

    def test_factories_produce_fresh_instances(self):
        assert make_app("bbench") is not make_app("bbench")

    def test_metrics_assigned(self):
        for name in LATENCY_APP_NAMES:
            assert make_app(name).metric is Metric.LATENCY
        for name in FPS_APP_NAMES:
            assert make_app(name).metric is Metric.FPS


class TestAppRuns:
    """One smoke run per app family (full sweep lives in benchmarks)."""

    def test_latency_app_produces_latency(self):
        run = run_app("photo-editor", seed=0)
        assert run.latency_s() > 0.5
        assert run.trace.duration_s > 2.0

    def test_fps_app_produces_frames(self):
        run = run_app("angry-bird", seed=0)
        assert 30.0 < run.avg_fps() <= 61.0
        assert 0.0 < run.min_fps() <= run.avg_fps() + 1e-9

    def test_media_app_meets_content_rate(self):
        run = run_app("video-player", seed=0)
        assert run.avg_fps() == pytest.approx(30.0, abs=2.0)

    def test_heavy_game_uses_big_cores(self):
        run = run_app("eternity-warrior-2", seed=1)
        big = run.trace.cores_of_type(CoreType.BIG)
        assert run.trace.busy[big].sum() > 0

    def test_light_apps_avoid_big_cores(self):
        run = run_app("youtube", seed=0)
        big = run.trace.cores_of_type(CoreType.BIG)
        big_share = run.trace.busy[big].sum() / max(run.trace.busy.sum(), 1e-9)
        assert big_share < 0.05

    def test_encoder_dominated_by_big_core(self):
        run = run_app("encoder", seed=0)
        big = run.trace.cores_of_type(CoreType.BIG)
        big_share = run.trace.busy[big].sum() / run.trace.busy.sum()
        assert big_share > 0.4

    def test_deterministic_across_processes_state(self):
        a = run_app("browser", seed=3)
        b = run_app("browser", seed=3)
        assert a.latency_s() == b.latency_s()
        assert a.avg_power_mw() == b.avg_power_mw()


class TestSpecSuite:
    def test_twelve_kernels(self):
        assert len(SPEC_BENCHMARKS) == 12

    def test_lookup(self):
        assert spec_benchmark("mcf").name == "mcf"
        with pytest.raises(KeyError):
            spec_benchmark("doom")

    def test_kernel_runs_to_completion(self):
        chip = exynos5422()
        sim = Simulator(SimConfig(
            chip=chip,
            core_config=single_core_config(CoreType.LITTLE),
            governors=fixed_governors(chip),
            max_seconds=30.0,
        ))
        bench = spec_benchmark("hmmer")
        task = bench.install(sim)
        trace = sim.run()
        # hmmer is compute-bound at ilp 0.95: little@1.3 does ~1 unit/s.
        assert trace.duration_s == pytest.approx(bench.total_units, rel=0.05)
        assert task.total_busy_s == pytest.approx(trace.duration_s, rel=0.01)

    def test_kernels_span_characteristics(self):
        ilps = [b.work_class.ilp for b in SPEC_BENCHMARKS]
        wss = [b.work_class.wss_kb for b in SPEC_BENCHMARKS]
        assert min(ilps) < 0.3 and max(ilps) > 0.9
        assert min(wss) < 512 and max(wss) > 1500


class TestMicrobenchmark:
    def run_micro(self, util, core_type=CoreType.LITTLE, freq=1_300_000):
        chip = exynos5422()
        sim = Simulator(SimConfig(
            chip=chip,
            core_config=single_core_config(core_type),
            governors=fixed_governors(chip, little_khz=freq, big_khz=freq),
            max_seconds=2.0,
        ))
        UtilizationMicrobenchmark(util).install(sim, chip.cluster(core_type).spec, freq)
        return sim.run()

    @pytest.mark.parametrize("util", [0.25, 0.5, 0.75, 1.0])
    def test_achieves_target_utilization(self, util):
        trace = self.run_micro(util)
        measured = trace.busy[0].mean()
        assert measured == pytest.approx(util, abs=0.06)

    def test_zero_utilization_idles(self):
        trace = self.run_micro(0.0)
        assert trace.busy.sum() == 0.0

    def test_utilization_invariant_to_frequency(self):
        lo = self.run_micro(0.5, freq=500_000).busy[0].mean()
        hi = self.run_micro(0.5, freq=1_300_000).busy[0].mean()
        assert lo == pytest.approx(hi, abs=0.06)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            UtilizationMicrobenchmark(1.5)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            UtilizationMicrobenchmark(0.5, period_ms=0)
