"""Tests for the generic app-building machinery."""

import pytest

from repro.platform.perfmodel import COMPUTE_BOUND
from repro.sim.engine import SimConfig, Simulator
from repro.workloads.base import (
    ActionSpec,
    App,
    BackgroundSpec,
    FramePipelineSpec,
    Metric,
    PeriodicSpec,
)


class MinimalApp(App):
    def __init__(self, metric=Metric.LATENCY, **kwargs):
        super().__init__("test-app", metric, COMPUTE_BOUND, **kwargs)
        self.built = False

    def build(self, sim):
        self.built = True


def make_sim(max_seconds=5.0, seed=0):
    return Simulator(SimConfig(max_seconds=max_seconds, seed=seed))


class TestAppContainer:
    def test_install_calls_build_once(self):
        app = MinimalApp()
        sim = make_sim()
        app.install(sim)
        assert app.built
        with pytest.raises(RuntimeError):
            app.install(sim)

    def test_ambient_threads_spawned(self):
        app = MinimalApp(ambient_ui_duty=0.5, ambient_bg_interval_ms=100)
        sim = make_sim()
        app.install(sim)
        names = {t.name for t in sim.tasks}
        assert "test-app/sys/surfaceflinger" in names
        assert "test-app/ui-anim" in names
        assert "test-app/sys/services" in names

    def test_ambient_disabled(self):
        app = MinimalApp(ambient_ui_duty=0.0, ambient_bg_interval_ms=0.0)
        sim = make_sim()
        app.install(sim)
        assert sim.tasks == []

    def test_metric_guards(self):
        lat = MinimalApp(Metric.LATENCY)
        fps = MinimalApp(Metric.FPS)
        with pytest.raises(ValueError):
            lat.avg_fps()
        with pytest.raises(ValueError):
            lat.min_fps()
        with pytest.raises(ValueError):
            fps.latency_s()


class TestDriver:
    def run_driver(self, actions, n_workers=2, max_seconds=20.0):
        app = MinimalApp(ambient_ui_duty=0, ambient_bg_interval_ms=0)
        sim = make_sim(max_seconds=max_seconds)
        app.install(sim)
        app.add_driver(sim, actions, n_workers=n_workers)
        trace = sim.run()
        return app, trace

    def test_actions_logged_in_order(self):
        actions = [
            ActionSpec("first", main_units=0.005, worker_units=0.002, think_ms=10),
            ActionSpec("second", main_units=0.005, worker_units=0.002, think_ms=10),
        ]
        app, _ = self.run_driver(actions)
        assert [name for name, _, _ in app.logs.actions] == ["first", "second"]

    def test_action_latency_positive_and_excludes_think(self):
        actions = [ActionSpec("a", main_units=0.01, worker_units=0.0, think_ms=5000)]
        app, trace = self.run_driver(actions, n_workers=0)
        # Latency counts only the action, not the 5s think.
        assert 0.0 < app.latency_s() < 1.0

    def test_driver_stops_simulation(self):
        actions = [ActionSpec("a", main_units=0.005, worker_units=0.0, think_ms=0)]
        _, trace = self.run_driver(actions, n_workers=0)
        assert trace.duration_s < 5.0

    def test_io_extends_latency(self):
        fast = [ActionSpec("a", main_units=0.005, worker_units=0.0, io_ms=0, think_ms=0)]
        slow = [ActionSpec("a", main_units=0.005, worker_units=0.0, io_ms=200, think_ms=0)]
        app_fast, _ = self.run_driver(fast, n_workers=0)
        app_slow, _ = self.run_driver(slow, n_workers=0)
        assert app_slow.latency_s() > app_fast.latency_s() + 0.15

    def test_workers_participate(self):
        actions = [ActionSpec("a", main_units=0.002, worker_units=0.05, think_ms=0)]
        app = MinimalApp(ambient_ui_duty=0, ambient_bg_interval_ms=0)
        sim = make_sim(max_seconds=20.0)
        app.install(sim)
        app.add_driver(sim, actions, n_workers=3)
        sim.run()
        workers = [t for t in sim.tasks if "worker" in t.name]
        assert len(workers) == 3
        assert all(w.total_busy_s > 0 for w in workers)


class TestFramePipeline:
    def run_pipeline(self, spec, seconds=4.0):
        app = MinimalApp(Metric.FPS, ambient_ui_duty=0, ambient_bg_interval_ms=0)
        sim = make_sim(max_seconds=seconds)
        app.install(sim)
        app.add_frame_pipeline(sim, spec)
        trace = sim.run()
        return app, trace

    def test_light_pipeline_hits_60fps(self):
        app, _ = self.run_pipeline(FramePipelineSpec(
            logic_units=0.001, render_units=0.001, units_sigma=0.05))
        assert app.avg_fps() == pytest.approx(60.0, abs=2.0)

    def test_content_rate_limits_fps(self):
        app, _ = self.run_pipeline(FramePipelineSpec(
            logic_units=0.001, render_units=0.001, units_sigma=0.05, fps=30))
        assert app.avg_fps() == pytest.approx(30.0, abs=2.0)

    def test_heavy_pipeline_misses_frames(self):
        # Render work beyond what even a big core fits in a vsync: the
        # pipeline is stage-throughput-bound and drops below 60 fps.
        app, _ = self.run_pipeline(FramePipelineSpec(
            logic_units=0.012, render_units=0.060, units_sigma=0.05))
        assert app.avg_fps() < 50.0

    def test_helpers_spawned_and_used(self):
        app = MinimalApp(Metric.FPS, ambient_ui_duty=0, ambient_bg_interval_ms=0)
        sim = make_sim(max_seconds=3.0)
        app.install(sim)
        app.add_frame_pipeline(sim, FramePipelineSpec(
            logic_units=0.001, render_units=0.001, helpers=2))
        sim.run()
        helpers = [t for t in sim.tasks if "frame-helper" in t.name]
        assert len(helpers) == 2
        assert all(h.total_busy_s > 0 for h in helpers)

    def test_min_fps_at_most_avg(self):
        app, _ = self.run_pipeline(FramePipelineSpec(
            logic_units=0.004, render_units=0.006, units_sigma=0.4), seconds=6.0)
        assert app.min_fps() <= app.avg_fps() + 1e-9


class TestPeriodicAndBackground:
    def test_periodic_respects_period(self):
        app = MinimalApp(ambient_ui_duty=0, ambient_bg_interval_ms=0)
        sim = make_sim(max_seconds=2.0)
        app.install(sim)
        task = app.add_periodic(sim, PeriodicSpec("p", period_ms=100, units_mean=0.001))
        trace = sim.run()
        # ~20 activations of 1ms of work; wall-clock busy is stretched
        # up to 2.6x because the idle governor parks at 500 MHz.
        assert 0.015 < task.total_busy_s < 0.08

    def test_duty_prob_skips_periods(self):
        app = MinimalApp(ambient_ui_duty=0, ambient_bg_interval_ms=0)
        sim = make_sim(max_seconds=4.0, seed=5)
        app.install(sim)
        always = app.add_periodic(sim, PeriodicSpec("a", 20, 0.001, duty_prob=1.0))
        rarely = app.add_periodic(sim, PeriodicSpec("r", 20, 0.001, duty_prob=0.2))
        sim.run()
        assert rarely.total_busy_s < 0.5 * always.total_busy_s

    def test_background_runs_sporadically(self):
        app = MinimalApp(ambient_ui_duty=0, ambient_bg_interval_ms=0)
        sim = make_sim(max_seconds=3.0)
        app.install(sim)
        task = app.add_background(sim, BackgroundSpec("bg", 100, 0.001))
        sim.run()
        assert task.total_busy_s > 0
